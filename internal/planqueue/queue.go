// Package planqueue is the durable asynchronous planning queue behind
// POST /v1/plan?async=1: a crash-safe, disk-journaled job queue with
// weighted-fair dequeue across tenants, bounded retries, a dead-letter park
// for poisoned jobs, and exactly-once completion across crashes.
//
// Durability and exactly-once:
//
//   - A job is acknowledged (Enqueue returns) only after its enqueue record
//     is fsynced into the journal; the matrix payload is spooled first,
//     content-addressed, through atomicio's atomic-write protocol.
//   - Completion order is: plan → cache.Put → journal "done" → spool delete.
//     A crash between any two steps is safe: on replay the job returns to
//     queued, and the worker's first step is a plan-cache lookup keyed by the
//     same content hash — if the plan was already produced, the job completes
//     from cache without a second pipeline run. The plan is therefore
//     *produced* exactly once even though the job may be *attempted* twice.
//   - Terminal records are checkpointed and the journal compacted: once
//     enough terminal records accumulate, the file is rewritten (atomically)
//     as one snapshot per live job plus a bounded tail of recent terminal
//     jobs kept for GET /v1/jobs lookups.
//
// Fairness: dequeue is weighted-fair queueing over tenants by job count.
// Each job gets a virtual finish tag F = max(V, F_prev(tenant)) + 1/weight;
// the scheduler always pops the tenant whose head job has the smallest tag
// (an indexed min-heap from internal/prio). A tenant with a 10,000-job
// backlog advances its own tags far into the virtual future and cannot delay
// a light tenant's next job by more than one job per weight ratio.
package planqueue

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/plancache/atomicio"
	"bootes/internal/planverify"
	"bootes/internal/prio"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// RunFunc executes the planning pipeline for a job. attempt starts at 0 and
// increments across the queue's bounded retries, letting implementations vary
// the seed so a retry is not a deterministic replay of the failure.
type RunFunc func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error)

// State is a job's position in the lifecycle:
//
//	queued → running → done
//	                 ↘ failed (retry scheduled) → running → …
//	                 ↘ dead   (retries exhausted; parked, never retried hot)
type State string

// The job states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateDead    State = "dead"
)

// Terminal reports whether the state is an endpoint of the lifecycle.
func (s State) Terminal() bool { return s == StateDone || s == StateDead }

func stateCode(s State) uint8 {
	switch s {
	case StateQueued:
		return 0
	case StateRunning:
		return 1
	case StateDone:
		return 2
	case StateFailed:
		return 3
	case StateDead:
		return 4
	}
	return 0
}

func stateFromCode(c uint8) State {
	switch c {
	case 1:
		return StateRunning
	case 2:
		return StateDone
	case 3:
		return StateFailed
	case 4:
		return StateDead
	}
	return StateQueued
}

// Job is the externally visible image of a queued planning job. Get returns
// copies; mutating one never affects the queue.
type Job struct {
	// ID is the stable handle ("j-%010d"), unique across restarts.
	ID string
	// Seq is the journal sequence number behind ID.
	Seq uint64
	// Tenant is the submitting tenant's identity.
	Tenant string
	// Key is the matrix content hash (the plan cache key).
	Key string
	// OptKey fingerprints the plan options; Key+OptKey is the dedupe key.
	OptKey string
	// State is the current lifecycle position.
	State State
	// Attempts counts pipeline attempts so far.
	Attempts int
	// EnqueuedAt is the acknowledgment time (journal fsync).
	EnqueuedAt time.Time
	// Reason carries the last failure (failed/dead) or degradation note.
	Reason string
	// Reordered / K / Degraded / DegradedReason summarize the plan once done.
	Reordered      bool
	K              int
	Degraded       bool
	DegradedReason string
	// Cached is true when the job completed via plan-cache dedupe without a
	// pipeline run (the exactly-once replay path).
	Cached bool
}

// job is the internal mutable record.
type job struct {
	Job
	finishTag int64     // WFQ virtual finish time while ready
	notBefore time.Time // retry backoff gate while failed
}

// Config assembles a Queue.
type Config struct {
	// Dir is the queue root: journal.wal plus a spool/ directory of matrix
	// payloads (required).
	Dir string
	// Run executes the pipeline for a job (required).
	Run RunFunc
	// Cache is the plan cache completions write to and replays dedupe
	// against; nil disables both (every attempt runs the pipeline).
	Cache *plancache.Cache
	// Workers sizes the worker pool (default 2; bootesd passes its admission
	// MaxInFlight so async work can never out-parallelize the sync path).
	Workers int
	// MaxAttempts bounds pipeline attempts per job before it is parked dead
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the first retry delay (default 100ms); attempt i waits
	// RetryBackoff·2^i plus up to 50% jitter.
	RetryBackoff time.Duration
	// RunTimeout caps one pipeline attempt (default 60s).
	RunTimeout time.Duration
	// MaxQueued bounds jobs in non-terminal states (default 1024); beyond it
	// Enqueue fails with ErrQueueFull.
	MaxQueued int
	// MaxQueuedPerTenant bounds one tenant's non-terminal jobs (default
	// MaxQueued/4); beyond it Enqueue fails with ErrTenantBacklog.
	MaxQueuedPerTenant int
	// Weights sets per-tenant WFQ weights; absent tenants weigh 1.
	Weights map[string]float64
	// CompactEvery triggers journal compaction after this many terminal
	// records (default 256).
	CompactEvery int
	// RetainTerminal bounds how many finished jobs stay queryable (and
	// journaled) after completion (default 1024).
	RetainTerminal int
	// Metrics is the registry the queue's instruments register on; nil uses
	// a private registry.
	Metrics *obs.Registry
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Seed seeds retry jitter (deterministic tests); 0 uses a fixed seed.
	Seed int64
	// Logf sinks queue diagnostics; nil uses a silent sink.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of queue activity since Open.
type Stats struct {
	// Enqueued counts acknowledged submissions; Deduped counts submissions
	// answered with an already-active job.
	Enqueued, Deduped int64
	// Done / Failed / Dead count lifecycle transitions; CachedDone is the
	// subset of Done completed by plan-cache dedupe without a pipeline run.
	Done, CachedDone, Failed, Dead int64
	// Recovered counts jobs replayed back to queued at Open (crash recovery);
	// TornTails counts truncated torn journal tails (each at most one
	// unacknowledged record).
	Recovered, TornTails int64
	// Compactions counts journal rewrites.
	Compactions int64
	// Depth / Running / Delayed are instantaneous gauges: ready jobs,
	// executing jobs, and failed jobs waiting out a retry backoff.
	Depth, Running, Delayed int64
	// JournalBytes is the journal file's current size.
	JournalBytes int64
}

// Enqueue failure modes the serving layer maps to 429.
var (
	// ErrQueueFull reports the global MaxQueued bound.
	ErrQueueFull = errors.New("planqueue: queue full")
	// ErrTenantBacklog reports the per-tenant bound.
	ErrTenantBacklog = errors.New("planqueue: tenant backlog limit reached")
	// ErrClosed reports an enqueue against a stopped queue.
	ErrClosed = errors.New("planqueue: queue closed")
)

// wfqScale converts the 1/weight job cost to int64 virtual-time ticks.
const wfqScale = 1 << 20

// tenantState is one tenant's scheduler bookkeeping.
type tenantState struct {
	name       string
	index      int // key into the prio min-heap
	weight     float64
	lastFinish int64  // finish tag of the tenant's most recent job
	fifo       []*job // ready jobs in arrival order
	active     int    // non-terminal jobs (backlog bound)
}

// Queue is the durable async plan queue. Create with Open, start workers with
// Start, stop with Stop (graceful) — Kill exists for crash simulation.
type Queue struct {
	cfg      Config
	spoolDir string

	mu      sync.Mutex
	cond    *sync.Cond
	j       *journal
	jobs    map[uint64]*job
	byID    map[string]uint64
	active  map[string]uint64 // dedupe key → seq of the non-terminal job
	tenants map[string]*tenantState
	byIndex []*tenantState
	ready   *prio.Queue // min-heap over tenant indices; pri = head finish tag
	delayed []*job      // failed jobs awaiting retry, unordered
	order   []uint64    // terminal seqs, oldest first (retention ring)
	vtime   int64
	nextSeq uint64
	stopped bool
	stats   Stats

	termSinceCompact int

	runCtx  context.Context // cancelled by Kill: aborts in-flight pipeline runs
	runStop context.CancelFunc
	workers sync.WaitGroup
	started bool

	jitterMu sync.Mutex
	jitter   *rand.Rand

	reg       *obs.Registry
	jobsTotal *obs.CounterVec
}

// Open loads (or creates) the queue directory, replays the journal, recovers
// interrupted jobs back to queued, sweeps orphaned spool files, and returns a
// queue with no workers running (call Start).
func Open(cfg Config) (*Queue, error) {
	if cfg.Dir == "" {
		return nil, errors.New("planqueue: Config.Dir is required")
	}
	if cfg.Run == nil {
		return nil, errors.New("planqueue: Config.Run is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 60 * time.Second
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 1024
	}
	if cfg.MaxQueuedPerTenant <= 0 {
		cfg.MaxQueuedPerTenant = (cfg.MaxQueued + 3) / 4
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 256
	}
	if cfg.RetainTerminal <= 0 {
		cfg.RetainTerminal = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "spool"), 0o755); err != nil {
		return nil, err
	}
	q := &Queue{
		cfg:      cfg,
		spoolDir: filepath.Join(cfg.Dir, "spool"),
		jobs:     make(map[uint64]*job),
		byID:     make(map[string]uint64),
		active:   make(map[string]uint64),
		tenants:  make(map[string]*tenantState),
		ready:    prio.NewMin(0),
		jitter:   rand.New(rand.NewSource(seed)),
	}
	q.cond = sync.NewCond(&q.mu)
	q.runCtx, q.runStop = context.WithCancel(context.Background())
	q.registerMetrics(cfg.Metrics)

	j, torn, err := openJournal(filepath.Join(cfg.Dir, "journal.wal"), q.replay)
	if err != nil {
		return nil, err
	}
	q.j = j
	if torn {
		q.stats.TornTails++
	}
	q.recover()
	return q, nil
}

func (q *Queue) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	q.reg = reg
	q.jobsTotal = reg.CounterVec("bootes_jobs_total",
		"Async plan job lifecycle transitions, by resulting state.", "state")
	reg.GaugeFunc("bootes_queue_depth", "Async jobs ready or retrying (not yet running).", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.readyDepthLocked() + int64(len(q.delayed))
	})
	reg.GaugeFunc("bootes_queue_running", "Async jobs currently executing.", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.stats.Running
	})
	reg.GaugeFunc("bootes_queue_oldest_age_seconds", "Age of the oldest non-terminal async job.", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		oldest := int64(0)
		now := q.cfg.Now()
		for _, jb := range q.jobs {
			if jb.State.Terminal() {
				continue
			}
			if age := int64(now.Sub(jb.EnqueuedAt).Seconds()); age > oldest {
				oldest = age
			}
		}
		return oldest
	})
	reg.GaugeFunc("bootes_queue_journal_bytes", "Current size of the async queue journal.", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.j.size
	})
	reg.CounterFunc("bootes_queue_compactions_total", "Journal compaction rewrites.", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.stats.Compactions
	})
	reg.CounterFunc("bootes_queue_recovered_total", "Jobs replayed back to queued after a crash.", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.stats.Recovered
	})
}

// replay folds one journal record into the in-memory table (Open only; no
// locking needed — the queue is not yet shared).
func (q *Queue) replay(r *rec) {
	if r.seq > q.nextSeq {
		q.nextSeq = r.seq
	}
	jb, ok := q.jobs[r.seq]
	if !ok {
		jb = &job{}
		q.jobs[r.seq] = jb
	}
	jb.Job = Job{
		ID:         jobID(r.seq),
		Seq:        r.seq,
		Tenant:     r.tenant,
		Key:        r.key,
		OptKey:     r.optKey,
		State:      stateFromCode(r.state),
		Attempts:   int(r.attempts),
		EnqueuedAt: time.Unix(0, r.enqueuedN),
		Reason:     r.reason,
		Reordered:  r.flags&flagReordered != 0,
		Degraded:   r.flags&flagDegraded != 0,
		Cached:     r.flags&flagCached != 0,
		K:          int(r.k),
	}
	if jb.Degraded {
		jb.DegradedReason = r.reason
	}
	// Later records overwrite earlier ones for the same seq, but a job that
	// carried tenant/key once must not lose them to a sparse terminal record.
	if jb.Tenant == "" && r.tenant != "" {
		jb.Tenant = r.tenant
	}
	q.byID[jb.ID] = r.seq
}

// recover normalizes the replayed table into a runnable state: interrupted
// (running) and mid-backoff (failed) jobs return to queued, live jobs enter
// the scheduler, terminal jobs enter the retention ring, and spool files
// nobody references are removed.
func (q *Queue) recover() {
	seqs := make([]uint64, 0, len(q.jobs))
	for seq := range q.jobs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	referenced := make(map[string]bool)
	for _, seq := range seqs {
		jb := q.jobs[seq]
		switch jb.State {
		case StateRunning, StateFailed:
			jb.State = StateQueued
			q.stats.Recovered++
			fallthrough
		case StateQueued:
			referenced[jb.Key] = true
			q.active[jb.Key+"|"+jb.OptKey] = seq
			q.enqueueReady(jb)
		case StateDead:
			// Parked jobs keep their payload for postmortem resubmission.
			referenced[jb.Key] = true
			q.order = append(q.order, seq)
		case StateDone:
			q.order = append(q.order, seq)
		}
	}
	names, err := os.ReadDir(q.spoolDir)
	if err != nil {
		q.cfg.Logf("planqueue: spool sweep: %v", err)
		return
	}
	for _, de := range names {
		name := de.Name()
		if strings.Contains(name, atomicio.TempSuffix) {
			// Interrupted spool write: never referenced by an acked job.
			_ = os.Remove(filepath.Join(q.spoolDir, name))
			continue
		}
		key := strings.TrimSuffix(name, ".bcsr")
		if !referenced[key] {
			_ = os.Remove(filepath.Join(q.spoolDir, name))
		}
	}
}

func jobID(seq uint64) string { return fmt.Sprintf("j-%010d", seq) }

// Start launches the worker pool. Idempotent.
func (q *Queue) Start() {
	q.mu.Lock()
	if q.started || q.stopped {
		q.mu.Unlock()
		return
	}
	q.started = true
	q.mu.Unlock()
	for i := 0; i < q.cfg.Workers; i++ {
		q.workers.Add(1)
		go q.worker()
	}
}

// Enqueue submits a matrix for asynchronous planning under the given tenant.
// The returned job is acknowledged durable: its enqueue record has been
// fsynced. dup is true when an identical submission (same matrix content and
// options) is already active, in which case the existing job is returned and
// nothing is written.
func (q *Queue) Enqueue(tenant string, m *sparse.CSR, optKey string) (Job, bool, error) {
	key := plancache.KeyCSR(m)
	dk := key + "|" + optKey

	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return Job{}, false, ErrClosed
	}
	if seq, ok := q.active[dk]; ok {
		jb := q.jobs[seq]
		q.stats.Deduped++
		q.jobsTotal.With("deduped").Inc()
		out := jb.Job
		q.mu.Unlock()
		return out, true, nil
	}
	live := int64(0)
	for _, jb := range q.jobs {
		if !jb.State.Terminal() {
			live++
		}
	}
	if live >= int64(q.cfg.MaxQueued) {
		q.mu.Unlock()
		return Job{}, false, ErrQueueFull
	}
	if t := q.tenants[tenant]; t != nil && t.active >= q.cfg.MaxQueuedPerTenant {
		q.mu.Unlock()
		return Job{}, false, fmt.Errorf("%w (tenant %q)", ErrTenantBacklog, tenant)
	}
	q.mu.Unlock()

	// Spool the payload outside the lock: content-addressed, atomic, and
	// idempotent (a second job for the same matrix reuses the file).
	spool := filepath.Join(q.spoolDir, key+".bcsr")
	if _, err := os.Stat(spool); os.IsNotExist(err) {
		werr := atomicio.WriteFile(spool, func(w io.Writer) error {
			return sparse.WriteBinary(w, m)
		})
		if werr != nil {
			return Job{}, false, fmt.Errorf("planqueue: spooling matrix: %w", werr)
		}
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.stopped {
		return Job{}, false, ErrClosed
	}
	if seq, ok := q.active[dk]; ok { // raced with an identical submission
		q.stats.Deduped++
		q.jobsTotal.With("deduped").Inc()
		return q.jobs[seq].Job, true, nil
	}
	q.nextSeq++
	jb := &job{Job: Job{
		ID:         jobID(q.nextSeq),
		Seq:        q.nextSeq,
		Tenant:     tenant,
		Key:        key,
		OptKey:     optKey,
		State:      StateQueued,
		EnqueuedAt: q.cfg.Now(),
	}}
	// The ack: fsync the enqueue record. Failure rolls the sequence back and
	// registers nothing — the client got an error, so nothing was promised.
	if err := q.j.append(q.recFor(jb, recEnqueue)); err != nil {
		q.nextSeq--
		q.wedgeOnCrash(err)
		return Job{}, false, fmt.Errorf("planqueue: journaling job: %w", err)
	}
	q.jobs[jb.Seq] = jb
	q.byID[jb.ID] = jb.Seq
	q.active[dk] = jb.Seq
	q.stats.Enqueued++
	q.jobsTotal.With("queued").Inc()
	q.enqueueReady(jb)
	q.cond.Signal()
	return jb.Job, false, nil
}

// Get returns a copy of the job with the given ID.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	seq, ok := q.byID[id]
	if !ok {
		return Job{}, false
	}
	return q.jobs[seq].Job, true
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = q.readyDepthLocked()
	s.Delayed = int64(len(q.delayed))
	s.JournalBytes = q.j.size
	return s
}

func (q *Queue) readyDepthLocked() int64 {
	n := int64(0)
	for _, t := range q.tenants {
		n += int64(len(t.fifo))
	}
	return n
}

// tenant returns (creating on first use) the scheduler state for name.
func (q *Queue) tenant(name string) *tenantState {
	t, ok := q.tenants[name]
	if !ok {
		w := q.cfg.Weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantState{name: name, index: len(q.byIndex), weight: w}
		q.tenants[name] = t
		q.byIndex = append(q.byIndex, t)
		q.ready.Grow(len(q.byIndex))
	}
	return t
}

// enqueueReady stamps the job's WFQ finish tag and inserts it into its
// tenant's FIFO (locked).
func (q *Queue) enqueueReady(jb *job) {
	t := q.tenant(jb.Tenant)
	start := q.vtime
	if t.lastFinish > start {
		start = t.lastFinish
	}
	jb.finishTag = start + int64(wfqScale/t.weight)
	t.lastFinish = jb.finishTag
	t.active++
	t.fifo = append(t.fifo, jb)
	if len(t.fifo) == 1 {
		q.ready.Insert(t.index, jb.finishTag)
	}
}

// popReady removes and returns the WFQ-next job, or nil (locked).
func (q *Queue) popReady() *job {
	idx, ok := q.ready.Peek()
	if !ok {
		return nil
	}
	t := q.byIndex[idx]
	jb := t.fifo[0]
	t.fifo = t.fifo[1:]
	if len(t.fifo) == 0 {
		q.ready.Remove(idx)
	} else {
		q.ready.Set(idx, t.fifo[0].finishTag)
	}
	if jb.finishTag > q.vtime {
		q.vtime = jb.finishTag
	}
	return jb
}

// promoteDue moves failed jobs whose backoff has elapsed back into the ready
// structure (locked).
func (q *Queue) promoteDue() {
	if len(q.delayed) == 0 {
		return
	}
	now := q.cfg.Now()
	kept := q.delayed[:0]
	for _, jb := range q.delayed {
		if jb.notBefore.After(now) {
			kept = append(kept, jb)
			continue
		}
		jb.State = StateQueued
		// The tenant's active count was never decremented; re-stamp the tag
		// only (enqueueReady would double-count the backlog).
		t := q.tenant(jb.Tenant)
		start := q.vtime
		if t.lastFinish > start {
			start = t.lastFinish
		}
		jb.finishTag = start + int64(wfqScale/t.weight)
		t.lastFinish = jb.finishTag
		t.fifo = append(t.fifo, jb)
		if len(t.fifo) == 1 {
			q.ready.Insert(t.index, jb.finishTag)
		}
	}
	q.delayed = kept
}

// dequeue blocks until a job is ready (returning it in the running state) or
// the queue stops (returning nil).
func (q *Queue) dequeue() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped {
			return nil
		}
		q.promoteDue()
		if jb := q.popReady(); jb != nil {
			jb.State = StateRunning
			q.stats.Running++
			return jb
		}
		q.cond.Wait()
	}
}

func (q *Queue) worker() {
	defer q.workers.Done()
	for {
		jb := q.dequeue()
		if jb == nil {
			return
		}
		q.execute(jb)
	}
}

// execute runs one attempt of a job: plan-cache dedupe first (the
// exactly-once replay path), then the pipeline, then the completion protocol
// (cache.Put → journal → spool delete).
func (q *Queue) execute(jb *job) {
	if q.cfg.Cache != nil {
		if e, ok := q.cfg.Cache.Get(jb.Key); ok {
			q.completeFromEntry(jb, e)
			return
		}
	}
	m, err := q.loadSpool(jb.Key)
	if err != nil {
		// The payload is gone (crash between ack and spool durability cannot
		// happen — spool precedes the ack — so this is disk damage). Nothing
		// to retry against: park it.
		q.finish(jb, StateDead, fmt.Sprintf("matrix payload unavailable: %v", err), nil)
		return
	}
	ctx, cancel := context.WithTimeout(q.runCtx, q.cfg.RunTimeout)
	res, err := q.cfg.Run(ctx, m, jb.Attempts)
	cancel()
	if q.runCtx.Err() != nil {
		// Killed mid-run (crash simulation / hard stop): leave the job as
		// the journal knows it; replay will recover it to queued.
		q.mu.Lock()
		q.stats.Running--
		q.mu.Unlock()
		return
	}
	if err != nil {
		q.retryOrDead(jb, err.Error())
		return
	}
	// The verifier gate: no job completes on an unverified plan. A corrupt
	// plan becomes a degraded identity plan whose reason classifies as
	// transient, so it retries like any transient degradation.
	if vres, vs := planverify.VerifyResult(planverify.SiteQueue, m, res, nil); len(vs) > 0 {
		res = vres
	}
	if res.Degraded && planverify.TransientReason(res.DegradedReason) && jb.Attempts+1 < q.cfg.MaxAttempts {
		q.retryOrDead(jb, res.DegradedReason)
		return
	}
	if q.cfg.Cache != nil && !res.Degraded {
		if err := q.cfg.Cache.Put(entryFromResult(jb.Key, res)); err != nil {
			// Durability loss, not a planning failure: the plan is correct.
			q.cfg.Logf("planqueue: cache write for %.12s failed: %v", jb.Key, err)
		}
	}
	q.finish(jb, StateDone, "", res)
}

// completeFromEntry finishes a job from a cached plan without a pipeline run.
func (q *Queue) completeFromEntry(jb *job, e *plancache.Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb.Attempts++ // the dedupe lookup was this attempt
	jb.Cached = true
	jb.Reordered = e.Reordered
	jb.K = e.K
	jb.Degraded = e.Degraded
	jb.DegradedReason = e.DegradedReason
	q.stats.CachedDone++
	q.finishLocked(jb, StateDone, "")
}

// retryOrDead schedules a bounded retry, or parks the job dead when its
// attempts are exhausted.
func (q *Queue) retryOrDead(jb *job, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb.Attempts++
	jb.Reason = reason
	if jb.Attempts >= q.cfg.MaxAttempts {
		q.finishLocked(jb, StateDead, reason)
		return
	}
	jb.State = StateFailed
	q.stats.Running--
	q.stats.Failed++
	q.jobsTotal.With("failed").Inc()
	backoff := q.cfg.RetryBackoff << (jb.Attempts - 1)
	q.jitterMu.Lock()
	backoff += time.Duration(q.jitter.Int63n(int64(backoff)/2 + 1))
	q.jitterMu.Unlock()
	jb.notBefore = q.cfg.Now().Add(backoff)
	q.delayed = append(q.delayed, jb)
	if err := q.j.append(q.recFor(jb, recFailed)); err != nil {
		q.cfg.Logf("planqueue: journaling retry of %s: %v", jb.ID, err)
		q.wedgeOnCrash(err)
	}
	// Wake a worker when the backoff elapses. The timer outliving the queue
	// is harmless: Broadcast on a stopped queue wakes workers that exit.
	time.AfterFunc(backoff, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
}

// finish completes a job (unlocked entry point).
func (q *Queue) finish(jb *job, st State, reason string, res *reorder.Result) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if res != nil {
		jb.Attempts++
		jb.Reordered = res.Reordered
		jb.K = int(res.Extra["k"])
		jb.Degraded = res.Degraded
		jb.DegradedReason = res.DegradedReason
	}
	q.finishLocked(jb, st, reason)
}

// finishLocked is the terminal transition: journal the outcome, release the
// dedupe slot, retire the spool payload (done only), enforce terminal
// retention, and maybe compact.
func (q *Queue) finishLocked(jb *job, st State, reason string) {
	jb.State = st
	if reason != "" {
		jb.Reason = reason
	}
	q.stats.Running--
	t := q.tenant(jb.Tenant)
	t.active--
	delete(q.active, jb.Key+"|"+jb.OptKey)
	typ := recDone
	if st == StateDead {
		typ = recDead
		q.stats.Dead++
		q.jobsTotal.With("dead").Inc()
	} else {
		q.stats.Done++
		q.jobsTotal.With("done").Inc()
	}
	if err := q.j.append(q.recFor(jb, typ)); err != nil {
		// Durability loss only: the in-memory state stays authoritative for
		// this process; after a crash the job replays to queued and the
		// plan-cache dedupe completes it again without a pipeline run.
		q.cfg.Logf("planqueue: journaling completion of %s: %v", jb.ID, err)
		q.wedgeOnCrash(err)
	}
	if st == StateDone && !q.spoolShared(jb) {
		_ = os.Remove(filepath.Join(q.spoolDir, jb.Key+".bcsr"))
	}
	q.order = append(q.order, jb.Seq)
	for len(q.order) > q.cfg.RetainTerminal {
		old := q.order[0]
		q.order = q.order[1:]
		if oj, ok := q.jobs[old]; ok && oj.State.Terminal() {
			delete(q.byID, oj.ID)
			delete(q.jobs, old)
		}
	}
	q.termSinceCompact++
	if q.termSinceCompact >= q.cfg.CompactEvery {
		q.compactLocked()
	}
}

// wedgeOnCrash closes the queue to new work after an injected journal crash
// (locked). An injected crash leaves a torn record in the file, exactly as a
// real crash would; anything appended after it would be unreachable to
// replay, so the only safe continuation is none — the harness is expected to
// Kill and reopen, which truncates the torn tail.
func (q *Queue) wedgeOnCrash(err error) {
	if errors.Is(err, ErrJournalCrash) {
		q.stopped = true
		q.cond.Broadcast()
	}
}

// spoolShared reports whether another non-done job still needs jb's payload
// (same content-addressed matrix; dead jobs keep theirs for postmortem).
func (q *Queue) spoolShared(jb *job) bool {
	for _, other := range q.jobs {
		if other.Seq != jb.Seq && other.Key == jb.Key && other.State != StateDone {
			return true
		}
	}
	return false
}

// compactLocked rewrites the journal as snapshots of every job still worth
// remembering: live jobs (queued/failed/running, persisted as queued) plus
// the retained terminal tail.
func (q *Queue) compactLocked() {
	seqs := make([]uint64, 0, len(q.jobs))
	for seq := range q.jobs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	recs := make([]*rec, 0, len(seqs))
	for _, seq := range seqs {
		jb := q.jobs[seq]
		r := q.recFor(jb, recSnap)
		if !jb.State.Terminal() {
			// A snapshot must be replayable standalone: in-flight states
			// collapse to queued, exactly as crash recovery would.
			r.state = stateCode(StateQueued)
		}
		recs = append(recs, r)
	}
	if err := q.j.rewrite(recs); err != nil {
		q.cfg.Logf("planqueue: compaction failed (journal keeps growing): %v", err)
		return
	}
	q.stats.Compactions++
	q.termSinceCompact = 0
}

func (q *Queue) recFor(jb *job, typ uint8) *rec {
	var flags uint8
	if jb.Reordered {
		flags |= flagReordered
	}
	if jb.Degraded {
		flags |= flagDegraded
	}
	if jb.Cached {
		flags |= flagCached
	}
	reason := jb.Reason
	if jb.Degraded && jb.DegradedReason != "" {
		reason = jb.DegradedReason
	}
	return &rec{
		typ:       typ,
		seq:       jb.Seq,
		state:     stateCode(jb.State),
		flags:     flags,
		k:         uint16(jb.K),
		attempts:  uint16(jb.Attempts),
		enqueuedN: jb.EnqueuedAt.UnixNano(),
		tenant:    jb.Tenant,
		key:       jb.Key,
		optKey:    jb.OptKey,
		reason:    reason,
	}
}

func (q *Queue) loadSpool(key string) (*sparse.CSR, error) {
	f, err := os.Open(filepath.Join(q.spoolDir, key+".bcsr"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sparse.ReadBinary(f)
}

// WaitIdle blocks until no job is ready, delayed, or running, or ctx expires.
// Chaos and tests use it to drain deterministically.
func (q *Queue) WaitIdle(ctx context.Context) error {
	for {
		q.mu.Lock()
		idle := q.readyDepthLocked() == 0 && len(q.delayed) == 0 && q.stats.Running == 0
		q.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Stop is the graceful drain: no new submissions, workers finish their
// current job and exit (queued jobs stay journaled — checkpointed, not
// discarded), the journal is compacted so restart replays a minimal file,
// and the file is closed. Safe to call twice.
func (q *Queue) Stop(ctx context.Context) error {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return nil
	}
	q.stopped = true
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("planqueue: drain deadline exceeded: %w", ctx.Err())
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.compactLocked()
	return q.j.close()
}

// Kill simulates a crash: in-flight pipeline runs are cancelled, workers
// exit without finishing, nothing is checkpointed, and the journal file is
// closed as-is. Only the chaos harness and tests should call this; production
// shutdown is Stop.
func (q *Queue) Kill() {
	q.mu.Lock()
	q.stopped = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.runStop()
	q.workers.Wait()
	// Double-close (after Stop, or after a self-wedge) is harmless.
	_ = q.j.close()
}

// Registry exposes the queue's metrics registry (the configured one, or the
// private default).
func (q *Queue) Registry() *obs.Registry { return q.reg }

// entryFromResult mirrors planserve's cache-entry construction for the async
// completion path.
func entryFromResult(key string, res *reorder.Result) *plancache.Entry {
	return &plancache.Entry{
		Key:               key,
		Perm:              res.Perm,
		Reordered:         res.Reordered,
		K:                 int(res.Extra["k"]),
		Degraded:          res.Degraded,
		DegradedReason:    res.DegradedReason,
		PreprocessSeconds: res.PreprocessTime.Seconds(),
		FootprintBytes:    res.FootprintBytes,
	}
}
