package planqueue

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/plancache"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func testMatrix(t testing.TB, seed int64) *sparse.CSR {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 48, Cols: 48, Density: 0.08, Seed: seed, Groups: 4,
	})
}

func healthyResult(m *sparse.CSR) *reorder.Result {
	perm := make(sparse.Permutation, m.Rows)
	for i := range perm {
		perm[i] = int32(m.Rows - 1 - i)
	}
	return &reorder.Result{
		Perm:      perm,
		Reordered: true,
		Extra:     map[string]float64{"k": 8},
	}
}

// runRecorder is a RunFunc that counts pipeline invocations per matrix key.
type runRecorder struct {
	mu    sync.Mutex
	runs  map[string]int
	order []string // keys in execution order
	fn    func(key string, attempt int, m *sparse.CSR) (*reorder.Result, error)
}

func newRunRecorder(fn func(key string, attempt int, m *sparse.CSR) (*reorder.Result, error)) *runRecorder {
	if fn == nil {
		fn = func(_ string, _ int, m *sparse.CSR) (*reorder.Result, error) {
			return healthyResult(m), nil
		}
	}
	return &runRecorder{runs: make(map[string]int), fn: fn}
}

func (rr *runRecorder) run(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := plancache.KeyCSR(m)
	rr.mu.Lock()
	rr.runs[key]++
	rr.order = append(rr.order, key)
	rr.mu.Unlock()
	return rr.fn(key, attempt, m)
}

func (rr *runRecorder) count(key string) int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.runs[key]
}

func testConfig(t testing.TB, rr *runRecorder) Config {
	t.Helper()
	return Config{
		Dir:          t.TempDir(),
		Run:          rr.run,
		Workers:      1,
		RetryBackoff: time.Millisecond,
		RunTimeout:   5 * time.Second,
	}
}

func waitIdle(t testing.TB, q *Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatalf("queue never went idle: %v", err)
	}
}

func TestEnqueueRunsToDone(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()

	m := testMatrix(t, 1)
	jb, dup, err := q.Enqueue("acme", m, "opts-v1")
	if err != nil || dup {
		t.Fatalf("Enqueue = (%+v, dup=%v, %v)", jb, dup, err)
	}
	if jb.State != StateQueued || jb.ID == "" {
		t.Fatalf("fresh job = %+v, want queued with an ID", jb)
	}
	q.Start()
	waitIdle(t, q)

	got, ok := q.Get(jb.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("job after drain = (%+v, %v), want done", got, ok)
	}
	if !got.Reordered || got.K != 8 || got.Attempts != 1 {
		t.Fatalf("job summary = %+v, want reordered k=8 attempts=1", got)
	}
	if _, ok := cache.Get(jb.Key); !ok {
		t.Fatal("completed plan missing from the plan cache")
	}
	if _, err := os.Stat(filepath.Join(cfg.Dir, "spool", jb.Key+".bcsr")); !os.IsNotExist(err) {
		t.Fatalf("spool payload not retired after completion: %v", err)
	}
	s := q.Stats()
	if s.Enqueued != 1 || s.Done != 1 || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEnqueueDedupesActiveJob(t *testing.T) {
	rr := newRunRecorder(nil)
	q, err := Open(testConfig(t, rr))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	m := testMatrix(t, 2)
	a, _, err := q.Enqueue("acme", m, "opts-v1")
	if err != nil {
		t.Fatal(err)
	}
	b, dup, err := q.Enqueue("acme", m, "opts-v1")
	if err != nil || !dup || b.ID != a.ID {
		t.Fatalf("identical submission = (%+v, dup=%v, %v), want dup of %s", b, dup, err, a.ID)
	}
	// Different options are a different plan: no dedupe.
	c, dup, err := q.Enqueue("acme", m, "opts-v2")
	if err != nil || dup || c.ID == a.ID {
		t.Fatalf("different-options submission = (%+v, dup=%v, %v), want a fresh job", c, dup, err)
	}
	if s := q.Stats(); s.Deduped != 1 || s.Enqueued != 2 {
		t.Fatalf("stats = %+v, want 2 enqueued 1 deduped", s)
	}
}

func TestCompletionFromCacheSkipsPipeline(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	m := testMatrix(t, 3)
	key := plancache.KeyCSR(m)
	if err := cache.Put(entryFromResult(key, healthyResult(m))); err != nil {
		t.Fatal(err)
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	jb, _, err := q.Enqueue("acme", m, "")
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	waitIdle(t, q)
	got, _ := q.Get(jb.ID)
	if got.State != StateDone || !got.Cached {
		t.Fatalf("job = %+v, want done via cache", got)
	}
	if n := rr.count(key); n != 0 {
		t.Fatalf("pipeline ran %d times for a cached plan, want 0", n)
	}
	if s := q.Stats(); s.CachedDone != 1 {
		t.Fatalf("stats = %+v, want CachedDone=1", s)
	}
}

func TestRetriesThenDead(t *testing.T) {
	rr := newRunRecorder(func(string, int, *sparse.CSR) (*reorder.Result, error) {
		return nil, errors.New("solver exploded")
	})
	cfg := testConfig(t, rr)
	cfg.MaxAttempts = 3
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	jb, _, err := q.Enqueue("acme", testMatrix(t, 4), "")
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	waitIdle(t, q)
	got, _ := q.Get(jb.ID)
	if got.State != StateDead {
		t.Fatalf("poisoned job state = %s, want dead", got.State)
	}
	if got.Attempts != 3 || !strings.Contains(got.Reason, "solver exploded") {
		t.Fatalf("dead job = %+v, want 3 attempts with the failure reason", got)
	}
	if n := rr.count(jb.Key); n != 3 {
		t.Fatalf("pipeline ran %d times, want exactly MaxAttempts=3 (dead jobs are never retried hot)", n)
	}
	s := q.Stats()
	if s.Dead != 1 || s.Failed != 2 {
		t.Fatalf("stats = %+v, want Dead=1 Failed=2", s)
	}
	// The dead job keeps its payload for postmortem resubmission.
	if _, err := os.Stat(filepath.Join(cfg.Dir, "spool", jb.Key+".bcsr")); err != nil {
		t.Fatalf("dead job's spool payload missing: %v", err)
	}
}

func TestTransientDegradationRetries(t *testing.T) {
	m := testMatrix(t, 5)
	rr := newRunRecorder(func(_ string, attempt int, m *sparse.CSR) (*reorder.Result, error) {
		if attempt == 0 {
			return &reorder.Result{
				Perm:           sparse.IdentityPerm(m.Rows),
				Degraded:       true,
				DegradedReason: "eigensolve did not converge",
			}, nil
		}
		return healthyResult(m), nil
	})
	cfg := testConfig(t, rr)
	cfg.MaxAttempts = 3
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	jb, _, err := q.Enqueue("acme", m, "")
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	waitIdle(t, q)
	got, _ := q.Get(jb.ID)
	if got.State != StateDone || got.Degraded {
		t.Fatalf("job = %+v, want healthy done after a transient-degradation retry", got)
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", got.Attempts)
	}
}

func TestDeterministicDegradationCompletesDegraded(t *testing.T) {
	rr := newRunRecorder(func(_ string, _ int, m *sparse.CSR) (*reorder.Result, error) {
		return &reorder.Result{
			Perm:           sparse.IdentityPerm(m.Rows),
			Degraded:       true,
			DegradedReason: "memory budget: traffic regression predicted",
		}, nil
	})
	q, err := Open(testConfig(t, rr))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	jb, _, err := q.Enqueue("acme", testMatrix(t, 6), "")
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	waitIdle(t, q)
	got, _ := q.Get(jb.ID)
	if got.State != StateDone || !got.Degraded {
		t.Fatalf("job = %+v, want done degraded (input-inherent degradation is not retried)", got)
	}
	if n := rr.count(jb.Key); n != 1 {
		t.Fatalf("pipeline ran %d times for a deterministic degradation, want 1", n)
	}
}

func TestBacklogBounds(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cfg.MaxQueued = 3
	cfg.MaxQueuedPerTenant = 2
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	if _, _, err := q.Enqueue("acme", testMatrix(t, 10), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue("acme", testMatrix(t, 11), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue("acme", testMatrix(t, 12), ""); !errors.Is(err, ErrTenantBacklog) {
		t.Fatalf("third acme job error = %v, want ErrTenantBacklog", err)
	}
	if _, _, err := q.Enqueue("globex", testMatrix(t, 13), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue("initech", testMatrix(t, 14), ""); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-global-bound job error = %v, want ErrQueueFull", err)
	}
}

// TestWeightedFairOrder pins the WFQ dequeue order: with weights
// {light:1, heavy:3} and both backlogs enqueued up front, a single worker
// must serve roughly three heavy jobs per light job — the heavy tenant's
// backlog cannot starve the light one, and the weights hold.
func TestWeightedFairOrder(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cfg.Weights = map[string]float64{"heavy": 3, "light": 1}
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()

	tenantOf := make(map[string]string)
	for i := 0; i < 4; i++ {
		jb, _, err := q.Enqueue("light", testMatrix(t, 100+int64(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		tenantOf[jb.Key] = "light"
	}
	for i := 0; i < 12; i++ {
		jb, _, err := q.Enqueue("heavy", testMatrix(t, 200+int64(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		tenantOf[jb.Key] = "heavy"
	}
	q.Start()
	waitIdle(t, q)

	rr.mu.Lock()
	order := append([]string(nil), rr.order...)
	rr.mu.Unlock()
	if len(order) != 16 {
		t.Fatalf("executed %d jobs, want 16", len(order))
	}
	// In every window of 4 completions the light tenant gets at least one
	// slot (weight share 1/4) and the heavy tenant at least two.
	for w := 0; w+4 <= len(order); w += 4 {
		light, heavy := 0, 0
		for _, key := range order[w : w+4] {
			if tenantOf[key] == "light" {
				light++
			} else {
				heavy++
			}
		}
		if light < 1 || heavy < 2 {
			t.Fatalf("window %d..%d served light=%d heavy=%d; WFQ share violated (order %v)",
				w, w+4, light, heavy, tenantNames(order, tenantOf))
		}
	}
}

func tenantNames(keys []string, tenantOf map[string]string) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = tenantOf[k]
	}
	return out
}

func TestStopDrainKeepsQueuedJobsDurable(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		jb, _, err := q.Enqueue("acme", testMatrix(t, 20+int64(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jb.ID)
	}
	// Stop without ever starting workers: a pure checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue("acme", testMatrix(t, 99), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after Stop = %v, want ErrClosed", err)
	}

	q2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Kill()
	for _, id := range ids {
		jb, ok := q2.Get(id)
		if !ok || jb.State != StateQueued {
			t.Fatalf("job %s after restart = (%+v, %v), want queued", id, jb, ok)
		}
	}
	q2.Start()
	waitIdle(t, q2)
	for _, id := range ids {
		if jb, _ := q2.Get(id); jb.State != StateDone {
			t.Fatalf("job %s = %+v, want done after restart drain", id, jb)
		}
	}
}

// TestCrashRecoveryExactlyOnce is the package-level exactly-once argument in
// miniature: kill the queue mid-stream, reopen over the same directory and
// cache, and verify that every acked job completes, jobs that finished before
// the crash never rerun the pipeline (plan-cache dedupe), and no job is lost.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cacheDir := t.TempDir()
	cache, err := plancache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	var keys []string
	for i := 0; i < 6; i++ {
		jb, _, err := q.Enqueue("acme", testMatrix(t, 40+int64(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jb.ID)
		keys = append(keys, jb.Key)
	}
	q.Start()
	// Let some (not necessarily all) jobs finish, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for q.Stats().Done < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	doneBefore := make(map[string]bool)
	for i, id := range ids {
		if jb, ok := q.Get(id); ok && jb.State == StateDone {
			doneBefore[keys[i]] = true
		}
	}
	q.Kill()

	cache2, err := plancache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache2
	q2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Kill()
	q2.Start()
	waitIdle(t, q2)

	for i, id := range ids {
		jb, ok := q2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across the crash", id)
		}
		if jb.State != StateDone {
			t.Fatalf("job %s = %+v after recovery drain, want done", id, jb)
		}
		if _, ok := cache2.Get(keys[i]); !ok {
			t.Fatalf("plan for %s missing from cache after recovery", id)
		}
	}
	for key, done := range doneBefore {
		if !done {
			continue
		}
		if n := rr.count(key); n != 1 {
			t.Fatalf("job finished before the crash ran the pipeline %d times total, want exactly 1 (cache dedupe on replay)", n)
		}
	}
}

func TestCompactionBoundsJournal(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	cfg.CompactEvery = 5
	cfg.RetainTerminal = 4
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	q.Start()
	var ids []string
	for i := 0; i < 20; i++ {
		jb, _, err := q.Enqueue("acme", testMatrix(t, 300+int64(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jb.ID)
	}
	waitIdle(t, q)
	s := q.Stats()
	if s.Compactions == 0 {
		t.Fatalf("no compactions after 20 terminal jobs with CompactEvery=5: %+v", s)
	}
	// Retention: the newest terminal jobs stay queryable, the oldest age out.
	if _, ok := q.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest terminal job evicted")
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest terminal job still resident beyond RetainTerminal")
	}

	// A restart over the compacted journal sees the same retained set.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Kill()
	if jb, ok := q2.Get(ids[len(ids)-1]); !ok || jb.State != StateDone {
		t.Fatalf("retained terminal job after restart = (%+v, %v), want done", jb, ok)
	}
}

func TestQueueMetricsRegistered(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	if _, _, err := q.Enqueue("acme", testMatrix(t, 60), ""); err != nil {
		t.Fatal(err)
	}
	q.Start()
	waitIdle(t, q)
	var b strings.Builder
	if err := q.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`bootes_jobs_total{state="queued"} 1`,
		`bootes_jobs_total{state="done"} 1`,
		"bootes_queue_depth 0",
		"bootes_queue_running 0",
		"bootes_queue_journal_bytes",
		"bootes_queue_recovered_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRecoveryAfterInjectedAppendCrash is the unit-level version of the chaos
// queue-crash scenario: an injected crash mid-append wedges the queue; reopen
// truncates the torn tail and loses nothing that was acked.
func TestRecoveryAfterInjectedAppendCrash(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acked, _, err := q.Enqueue("acme", testMatrix(t, 70), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.JournalAppendWrite); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue("acme", testMatrix(t, 71), ""); !errors.Is(err, ErrJournalCrash) {
		t.Fatalf("enqueue under injected crash = %v, want ErrJournalCrash", err)
	}
	// The queue wedged itself: no further submissions on a torn journal.
	if _, _, err := q.Enqueue("acme", testMatrix(t, 72), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after crash = %v, want ErrClosed (queue must wedge)", err)
	}
	q.Kill()

	q2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Kill()
	if q2.Stats().TornTails != 1 {
		t.Fatalf("stats = %+v, want TornTails=1", q2.Stats())
	}
	if jb, ok := q2.Get(acked.ID); !ok || jb.State != StateQueued {
		t.Fatalf("acked job after recovery = (%+v, %v), want queued", jb, ok)
	}
	q2.Start()
	waitIdle(t, q2)
	if jb, _ := q2.Get(acked.ID); jb.State != StateDone {
		t.Fatalf("acked job = %+v, want done", jb)
	}
}

func TestOrphanSpoolSweptOnOpen(t *testing.T) {
	rr := newRunRecorder(nil)
	cfg := testConfig(t, rr)
	spool := filepath.Join(cfg.Dir, "spool")
	if err := os.MkdirAll(spool, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(spool, "0123456789abcdef.bcsr")
	tornTemp := filepath.Join(spool, "feed.bcsr.tmp123")
	for _, p := range []string{orphan, tornTemp} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Kill()
	for _, p := range []string{orphan, tornTemp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the open sweep", p)
		}
	}
}

func TestStableJobIDs(t *testing.T) {
	if id := jobID(7); id != "j-0000000007" {
		t.Fatalf("jobID(7) = %q", id)
	}
	if fmt.Sprintf("%s", jobID(12345)) != "j-0000012345" {
		t.Fatal("jobID format drifted; clients treat IDs as opaque but stable")
	}
}
