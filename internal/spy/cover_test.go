package spy

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bootes/internal/sparse"
)

// failWriter errors after accepting limit bytes, exercising WritePGM's
// mid-stream and flush error paths.
type failWriter struct {
	limit int
	n     int
}

var errWriterFull = errors.New("writer full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errWriterFull
	}
	w.n += len(p)
	return len(p), nil
}

func TestWritePGMWriteError(t *testing.T) {
	// 256x256 pixels overflow bufio's 4 KiB buffer, so the failure surfaces
	// mid-stream from WriteByte rather than at the final Flush.
	if err := WritePGM(&failWriter{}, diag(8), Options{}); !errors.Is(err, errWriterFull) {
		t.Errorf("mid-stream error = %v, want %v", err, errWriterFull)
	}
	// A 4x4 image fits the buffer entirely: the same failure now comes from
	// Flush.
	if err := WritePGM(&failWriter{}, diag(8), Options{Width: 4, Height: 4}); !errors.Is(err, errWriterFull) {
		t.Errorf("flush error = %v, want %v", err, errWriterFull)
	}
}

func TestWritePGMEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, sparse.Zero(0, 0), Options{Width: 3, Height: 2}); err != nil {
		t.Fatal(err)
	}
	want := "P5\n3 2\n255\n" + strings.Repeat("\xff", 6)
	if buf.String() != want {
		t.Errorf("empty-matrix PGM = %q, want %q", buf.String(), want)
	}
}

func TestASCIIShadeLevels(t *testing.T) {
	// One 3-cell-wide row over 15 columns (5 columns per cell) with cell
	// counts 5, 2, 1. With maxCount=5 that renders '#' (5*4 >= 5*3),
	// '+' (2*4 >= 5), and '.' (1*4 < 5) — all three shade branches.
	coo := sparse.NewCOO(1, 15, true)
	for _, j := range []int{0, 1, 2, 3, 4, 5, 6, 10} {
		coo.AddPattern(0, j)
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	got := ASCII(m, Options{Width: 3, Height: 1})
	body := strings.Split(got, "\n")[1]
	if body != "|#+.|" {
		t.Errorf("shade row = %q, want |#+.| in\n%s", body, got)
	}
}
