// Package spy renders sparsity-pattern ("spy") plots of sparse matrices as
// ASCII text and binary PGM images. Figures 1 and 2 of the paper are spy
// plots; the experiment drivers use this package to regenerate them.
package spy

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"bootes/internal/sparse"
)

// Options controls rendering.
type Options struct {
	// Width and Height are the plot dimensions in cells/pixels. 0 selects
	// 64×32 for ASCII and 256×256 for PGM.
	Width, Height int
}

// grid bins matrix entries into a width×height density grid.
func grid(m *sparse.CSR, width, height int) [][]int {
	g := make([][]int, height)
	for i := range g {
		g[i] = make([]int, width)
	}
	if m.Rows == 0 || m.Cols == 0 {
		return g
	}
	for i := 0; i < m.Rows; i++ {
		r := i * height / m.Rows
		if r >= height {
			r = height - 1
		}
		for _, c := range m.Row(i) {
			cc := int(c) * width / m.Cols
			if cc >= width {
				cc = width - 1
			}
			g[r][cc]++
		}
	}
	return g
}

// ASCII renders the pattern with density shading (space, ·, +, #).
func ASCII(m *sparse.CSR, opts Options) string {
	w, h := opts.Width, opts.Height
	if w == 0 {
		w = 64
	}
	if h == 0 {
		h = 32
	}
	g := grid(m, w, h)
	maxCount := 1
	for _, row := range g {
		for _, v := range row {
			if v > maxCount {
				maxCount = v
			}
		}
	}
	shades := []byte{' ', '.', '+', '#'}
	var b strings.Builder
	b.Grow((w + 3) * (h + 2))
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range g {
		b.WriteByte('|')
		for _, v := range row {
			idx := 0
			if v > 0 {
				// Log-ish shading: any → '.', mid → '+', dense → '#'.
				switch {
				case v*4 >= maxCount*3:
					idx = 3
				case v*4 >= maxCount:
					idx = 2
				default:
					idx = 1
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	return b.String()
}

// WritePGM writes the pattern as a binary (P5) PGM image, dark pixels where
// entries are dense.
func WritePGM(w io.Writer, m *sparse.CSR, opts Options) error {
	width, height := opts.Width, opts.Height
	if width == 0 {
		width = 256
	}
	if height == 0 {
		height = 256
	}
	g := grid(m, width, height)
	maxCount := 1
	for _, row := range g {
		for _, v := range row {
			if v > maxCount {
				maxCount = v
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	for _, row := range g {
		for _, v := range row {
			// White background, darker with density.
			shade := 255 - v*255/maxCount
			if v > 0 && shade > 220 {
				shade = 220 // ensure isolated entries stay visible
			}
			if err := bw.WriteByte(byte(shade)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
