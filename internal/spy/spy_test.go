package spy

import (
	"bytes"
	"strings"
	"testing"

	"bootes/internal/sparse"
)

func diag(n int) *sparse.CSR { return sparse.Identity(n, false) }

func TestASCIIDiagonal(t *testing.T) {
	out := ASCII(diag(64), Options{Width: 8, Height: 8})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10 (8 rows + 2 borders)", len(lines))
	}
	// Diagonal cells are marked, off-diagonal are blank.
	for r := 0; r < 8; r++ {
		row := lines[r+1]
		for c := 0; c < 8; c++ {
			ch := row[c+1]
			if r == c && ch == ' ' {
				t.Errorf("diagonal cell (%d,%d) blank", r, c)
			}
			if r != c && ch != ' ' {
				t.Errorf("off-diagonal cell (%d,%d) marked %q", r, c, ch)
			}
		}
	}
}

func TestASCIIDefaults(t *testing.T) {
	out := ASCII(diag(10), Options{})
	if !strings.Contains(out, "+") {
		t.Error("missing border")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 34 { // 32 rows + 2 borders
		t.Errorf("default height wrong: %d lines", len(lines))
	}
}

func TestASCIIEmptyMatrix(t *testing.T) {
	out := ASCII(sparse.Zero(0, 0), Options{Width: 4, Height: 4})
	if !strings.Contains(out, "+----+") {
		t.Error("empty matrix render broken")
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, diag(32), Options{Width: 16, Height: 16}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n16 16\n255\n")) {
		t.Fatalf("bad header: %q", data[:20])
	}
	pixels := data[len("P5\n16 16\n255\n"):]
	if len(pixels) != 256 {
		t.Fatalf("pixel count %d, want 256", len(pixels))
	}
	// Diagonal pixels dark(er), off-diagonal white.
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			p := pixels[r*16+c]
			if r == c && p == 255 {
				t.Errorf("diagonal pixel (%d,%d) white", r, c)
			}
			if r != c && p != 255 {
				t.Errorf("off-diagonal pixel (%d,%d) = %d", r, c, p)
			}
		}
	}
}

func TestPGMDefaultSize(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, diag(10), Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n256 256\n")) {
		t.Error("default PGM size wrong")
	}
}
