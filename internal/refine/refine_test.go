package refine

import (
	"context"
	"math"
	"testing"

	"bootes/internal/parallel"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// similarityFixtures builds the metamorphic corpus: the row-similarity
// matrices of 3 archetypes × 3 seeds, small enough for exhaustive property
// checks but structured enough to exercise every op's interesting paths
// (dense hub rows, empty overlap, ties).
func similarityFixtures(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	fixtures := map[string]*sparse.CSR{}
	archetypes := []workloads.Archetype{
		workloads.ArchScrambledBlock, workloads.ArchPowerLaw, workloads.ArchManySmallClusters,
	}
	for _, arch := range archetypes {
		for _, seed := range []int64{1, 2, 3} {
			a := workloads.Generate(arch, workloads.Params{Rows: 120, Cols: 120, Density: 0.05, Seed: seed})
			s := sparse.Similarity(a)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s seed %d: invalid similarity: %v", arch, seed, err)
			}
			fixtures[arch.String()+"/"+string(rune('0'+seed))] = s
		}
	}
	return fixtures
}

// isSymmetric reports whether m equals its transpose in pattern and values.
func isSymmetric(m *sparse.CSR) bool {
	return sparse.Equal(m, sparse.Transpose(m))
}

// equalWithin reports shape- and pattern-identical matrices whose values
// agree within rel relative tolerance. Floating-point sums reassociate under
// permutation (Diffuse accumulates products in column order), so exact
// bit-equality is the wrong contract for cross-permutation comparisons.
func equalWithin(a, b *sparse.CSR, rel float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	if !sparse.Equal(a.Pattern(), b.Pattern()) {
		return false
	}
	for p := range a.Val {
		x, y := a.Val[p], b.Val[p]
		if x == y {
			continue
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		if math.Abs(x-y) > rel*scale {
			return false
		}
	}
	return true
}

func TestSymmetrizeSymmetricAndIdempotent(t *testing.T) {
	for name, s := range similarityFixtures(t) {
		t1, err := Symmetrize(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !isSymmetric(t1) {
			t.Errorf("%s: Symmetrize output is not symmetric", name)
		}
		t2, err := Symmetrize(t1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sparse.Equal(t1, t2) {
			t.Errorf("%s: Symmetrize is not idempotent", name)
		}
	}
}

func TestThresholdMonotoneInP(t *testing.T) {
	ps := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95}
	for name, s := range similarityFixtures(t) {
		prevNNZ := int64(-1)
		var prev *sparse.CSR
		for _, p := range ps {
			out, err := RowThreshold(s, p)
			if err != nil {
				t.Fatalf("%s p=%g: %v", name, p, err)
			}
			if out.NNZ() > s.NNZ() {
				t.Errorf("%s p=%g: thresholding increased nnz %d → %d", name, p, s.NNZ(), out.NNZ())
			}
			if prevNNZ >= 0 && out.NNZ() > prevNNZ {
				t.Errorf("%s: nnz not monotone in p: p=%g kept %d > %d", name, p, out.NNZ(), prevNNZ)
			}
			// Set containment: every entry the stricter threshold keeps, the
			// looser one kept too.
			if prev != nil {
				for i := 0; i < out.Rows; i++ {
					looser := map[int32]bool{}
					for _, c := range prev.Row(i) {
						looser[c] = true
					}
					for _, c := range out.Row(i) {
						if !looser[c] {
							t.Fatalf("%s p=%g: row %d entry %d survives the stricter threshold but not the looser", name, p, i, c)
						}
					}
				}
			}
			prevNNZ, prev = out.NNZ(), out
		}
	}
}

func TestThresholdRejectsBadPercentile(t *testing.T) {
	s := sparse.Similarity(workloads.Generate(workloads.ArchRandom,
		workloads.Params{Rows: 20, Cols: 20, Density: 0.2, Seed: 1}))
	for _, p := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := RowThreshold(s, p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

func TestRowMaxNormRowsAreMaxOne(t *testing.T) {
	for name, s := range similarityFixtures(t) {
		out := RowMaxNorm(s)
		for i := 0; i < out.Rows; i++ {
			rv := out.RowVals(i)
			if len(rv) == 0 {
				continue
			}
			max := 0.0
			for _, v := range rv {
				if v > max {
					max = v
				}
			}
			if max != 1.0 {
				t.Fatalf("%s: row %d max is %v, want exactly 1", name, i, max)
			}
		}
	}
}

func TestDiffusePreservesSymmetry(t *testing.T) {
	for name, s := range similarityFixtures(t) {
		out, err := Diffuse(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sparse.Equal(out.Pattern(), sparse.Transpose(out).Pattern()) {
			t.Errorf("%s: Diffuse output pattern is not symmetric", name)
		}
		if !equalWithin(out, sparse.Transpose(out), 1e-12) {
			t.Errorf("%s: Diffuse output values are not symmetric", name)
		}
	}
}

func TestApplyFullPipelineInvariants(t *testing.T) {
	o := Default()
	for name, s := range similarityFixtures(t) {
		out, err := Apply(context.Background(), s, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: pipeline output invalid: %v", name, err)
		}
		if !isSymmetric(out) {
			t.Errorf("%s: full pipeline output is not symmetric", name)
		}
		for i := 0; i < out.Rows; i++ {
			for _, v := range out.RowVals(i) {
				if v > 1 || v < 0 || math.IsNaN(v) {
					t.Fatalf("%s: row %d value %v outside [0,1]", name, i, v)
				}
			}
		}
	}
}

// TestApplyBitIdenticalAcrossWorkerCounts pins the determinism contract: the
// full pipeline must produce byte-identical output for every worker budget
// (the BOOTES_WORKERS knob), because plan keys assume the refined similarity
// is a pure function of its input.
func TestApplyBitIdenticalAcrossWorkerCounts(t *testing.T) {
	o := Default()
	for name, s := range similarityFixtures(t) {
		var ref *sparse.CSR
		for _, workers := range []int{1, 2, 8} {
			prev := parallel.SetWorkers(workers)
			out, err := Apply(context.Background(), s, o)
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if ref == nil {
				ref = out
				continue
			}
			if !sparse.Equal(ref, out) {
				t.Errorf("%s: output differs between 1 and %d workers", name, workers)
			}
		}
	}
}

// TestApplyPermutationEquivariant pins refine(P·S·Pᵀ) = P·refine(S)·Pᵀ: the
// pipeline must not depend on row order, only on the affinity structure.
// Patterns must match exactly; values within 1e-12 (Diffuse reassociates
// floating-point sums under relabeling).
func TestApplyPermutationEquivariant(t *testing.T) {
	o := Default()
	for name, s := range similarityFixtures(t) {
		perm := testPerm(s.Rows)
		ps, err := sparse.PermuteSymmetric(s, perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refinedPerm, err := Apply(context.Background(), ps, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refined, err := Apply(context.Background(), s, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		permRefined, err := sparse.PermuteSymmetric(refined, perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalWithin(refinedPerm, permRefined, 1e-12) {
			t.Errorf("%s: refine(P·S·Pᵀ) ≠ P·refine(S)·Pᵀ", name)
		}
	}
}

// testPerm is a fixed non-trivial permutation: reversal composed with a
// stride-7 shuffle, deterministic and free of fixed points for n > 2.
func testPerm(n int) sparse.Permutation {
	p := make(sparse.Permutation, n)
	for i := range p {
		p[i] = int32((i*7 + n - 1 - i) % n)
	}
	seen := make([]bool, n)
	ok := true
	for _, v := range p {
		if seen[v] {
			ok = false
			break
		}
		seen[v] = true
	}
	if !ok {
		// stride collides with n: fall back to plain reversal.
		for i := range p {
			p[i] = int32(n - 1 - i)
		}
	}
	return p
}

func TestApplyRejectsHostileInput(t *testing.T) {
	if _, err := Apply(context.Background(), nil, Default()); err == nil {
		t.Error("nil matrix accepted")
	}
	rect, err := sparse.NewCSR(2, 3, []int64{0, 1, 2}, []int32{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(context.Background(), rect, Default()); err == nil {
		t.Error("rectangular matrix accepted")
	}
	sq, err := sparse.NewCSR(2, 2, []int64{0, 1, 2}, []int32{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.ThresholdP = 1.5
	if _, err := Apply(context.Background(), sq, bad); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Apply(ctx, sq, Default()); err == nil {
		t.Error("cancelled context not honored")
	}
}

func TestOptionsString(t *testing.T) {
	if got := (Options{}).String(); got != "none" {
		t.Errorf("empty options = %q", got)
	}
	if got := Default().String(); got != "crop+thr0.95+sym+diffuse+rownorm" {
		t.Errorf("default options = %q", got)
	}
}
