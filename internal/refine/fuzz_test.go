package refine

import (
	"context"
	"math"
	"testing"

	"bootes/internal/sparse"
)

// FuzzRefine drives the full pipeline with hostile hand-assembled CSR inputs
// (never pre-validated — Apply owns the validation) and arbitrary op
// combinations. Whatever Apply accepts must be a valid square CSR; whatever it
// rejects must come back as an error, never a panic, OOM, or hang.
func FuzzRefine(f *testing.F) {
	// Empty matrix.
	f.Add(0, 0, []byte{0}, []byte{}, []byte{}, byte(0x1f), 0.95)
	// Single row.
	f.Add(1, 1, []byte{0, 1}, []byte{0}, []byte{200}, byte(0x1f), 0.5)
	// All-dense 3x3 (rowPtr 0,3,6,9; every column in every row).
	f.Add(3, 3, []byte{0, 3, 6, 9}, []byte{0, 1, 2, 0, 1, 2, 0, 1, 2},
		[]byte{10, 20, 30, 40, 50, 60, 70, 80, 90}, byte(0x1f), 0.95)
	// Rectangular (must be rejected), bad percentile, negative dims.
	f.Add(2, 3, []byte{0, 1, 2}, []byte{0, 1}, []byte{1, 2}, byte(0x02), 1.5)
	f.Add(-1, -1, []byte{}, []byte{}, []byte{}, byte(0x00), 0.0)
	f.Fuzz(func(t *testing.T, rows, cols int, rowPtrB, colB, valB []byte, ops byte, p float64) {
		rowPtr := make([]int64, len(rowPtrB))
		for i, b := range rowPtrB {
			rowPtr[i] = int64(b) - 8
			if b > 250 {
				rowPtr[i] = int64(b) << 55
			}
		}
		col := make([]int32, len(colB))
		for i, b := range colB {
			col[i] = int32(b) - 4
		}
		// Values spread across negatives, zeros, and non-finite floats so the
		// threshold quantile and row-max paths see every numeric regime.
		val := make([]float64, len(valB))
		for i, b := range valB {
			switch {
			case b == 255:
				val[i] = math.Inf(1)
			case b == 254:
				val[i] = math.NaN()
			default:
				val[i] = float64(b)/64 - 1
			}
		}
		o := Options{
			CropDiagonal: ops&1 != 0,
			Symmetrize:   ops&4 != 0,
			Diffuse:      ops&8 != 0,
			RowMaxNorm:   ops&16 != 0,
		}
		if ops&2 != 0 {
			o.ThresholdP = p
		}
		m := &sparse.CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, Col: col, Val: val}
		out, err := Apply(context.Background(), m, o)
		if err != nil {
			return // rejecting bad input is fine; crashing is not
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid output: %v", err)
		}
		if out.Rows != out.Cols {
			t.Fatalf("refined output not square: %dx%d", out.Rows, out.Cols)
		}
		if out.Val == nil && out.NNZ() > 0 {
			t.Fatal("refined output lost its values")
		}
		// Ops that promise symmetry must deliver it on any accepted input:
		// Symmetrize always ends symmetric (a final pass restores it after
		// RowMaxNorm), and Diffuse does unless RowMaxNorm rescales afterwards.
		// NaN values never compare equal, so skip value comparison when the
		// input smuggled NaNs through the arithmetic.
		hasNaN := false
		for _, v := range out.Val {
			if v != v {
				hasNaN = true
				break
			}
		}
		if !hasNaN && (o.Symmetrize || (o.Diffuse && !o.RowMaxNorm)) {
			tr := sparse.Transpose(out)
			if !sparse.Equal(out, tr) {
				t.Fatal("symmetrizing pipeline produced an asymmetric matrix")
			}
		}
	})
}
