// Package refine implements the affinity-refinement pipeline the auto-k
// selector runs over the CSR similarity matrix before eigengap analysis:
// crop-diagonal, per-row p-percentile thresholding, symmetrization
// (elementwise max with the transpose), diffusion S·Sᵀ, and row-max
// renormalization. The ops mirror the SpectralCluster production recipe
// (minus the gaussian blur, which only makes sense for dense affinities) and
// compose in a fixed order, so a refinement configuration is a value, not a
// program.
//
// Every op is a pure function: inputs are never mutated, outputs are freshly
// allocated valued CSR matrices. Per-row work runs through internal/parallel
// with fixed-grain chunking and disjoint writes, so results are bit-identical
// for every BOOTES_WORKERS setting — the same determinism contract as the
// rest of the planning pipeline. All ops are permutation-equivariant:
// refine(P·S·Pᵀ) = P·refine(S)·Pᵀ for any row/column relabeling P, which the
// metamorphic suite asserts.
package refine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"bootes/internal/parallel"
	"bootes/internal/sparse"
)

// Errors returned by the pipeline.
var (
	// ErrNotSquare reports a non-square affinity matrix; every refinement op
	// is defined on row-to-row similarity, which is square by construction.
	ErrNotSquare = errors.New("refine: affinity matrix must be square")
	// ErrBadPercentile reports a thresholding percentile outside [0, 1).
	ErrBadPercentile = errors.New("refine: percentile must be in [0, 1)")
)

// rowGrain is the fixed parallel chunk size for per-row ops. Chunk boundaries
// depend only on (rows, rowGrain), never on the worker count.
const rowGrain = 256

// Options selects which refinement ops run. Ops always apply in the fixed
// order: CropDiagonal → Threshold → Symmetrize → Diffuse → RowMaxNorm; when
// both RowMaxNorm and Symmetrize are enabled a final symmetrize pass restores
// value symmetry after the per-row scaling (elementwise max keeps each row's
// unit maximum, so the max-1 property survives).
type Options struct {
	// CropDiagonal removes self-similarity entries, which otherwise dominate
	// every row and flatten the spectrum's gap structure.
	CropDiagonal bool
	// ThresholdP, when in (0, 1), applies per-row p-percentile thresholding:
	// entries below the row's p-quantile value are dropped. Larger p drops
	// more (monotone), and thresholding never increases nnz. 0 disables.
	ThresholdP float64
	// Symmetrize replaces S with max(S, Sᵀ) elementwise — the SpectralCluster
	// recipe's symmetrization, idempotent by construction.
	Symmetrize bool
	// Diffuse replaces S with S·Sᵀ, sharpening block structure by two-hop
	// similarity propagation. The output is symmetric regardless of input.
	Diffuse bool
	// RowMaxNorm scales each row by its maximum value so every non-empty row
	// has maximum exactly 1 (SpectralCluster's row-wise renorm).
	RowMaxNorm bool
}

// Default returns the production refinement configuration: the full
// SpectralCluster-style pipeline with 95th-percentile thresholding.
func Default() Options {
	return Options{
		CropDiagonal: true,
		ThresholdP:   0.95,
		Symmetrize:   true,
		Diffuse:      true,
		RowMaxNorm:   true,
	}
}

// Enabled reports whether any op is turned on.
func (o Options) Enabled() bool {
	return o.CropDiagonal || o.ThresholdP > 0 || o.Symmetrize || o.Diffuse || o.RowMaxNorm
}

// String names the enabled ops in application order (for logs and reports).
func (o Options) String() string {
	if !o.Enabled() {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if o.CropDiagonal {
		add("crop")
	}
	if o.ThresholdP > 0 {
		add(fmt.Sprintf("thr%.2f", o.ThresholdP))
	}
	if o.Symmetrize {
		add("sym")
	}
	if o.Diffuse {
		add("diffuse")
	}
	if o.RowMaxNorm {
		add("rownorm")
	}
	return s
}

// Apply runs the enabled ops over s in the fixed pipeline order and returns
// the refined affinity matrix (always valued, never sharing storage with s).
// s must be a valid square CSR; Apply validates rather than trusting the
// caller, so hostile inputs surface as errors, never panics. The context is
// checked between ops; mid-pipeline cancellation returns ctx.Err().
func Apply(ctx context.Context, s *sparse.CSR, o Options) (*sparse.CSR, error) {
	if s == nil {
		return nil, errors.New("refine: nil matrix")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("refine: invalid affinity matrix: %w", err)
	}
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, s.Rows, s.Cols)
	}
	if !(o.ThresholdP >= 0 && o.ThresholdP < 1) { // NaN-safe
		return nil, fmt.Errorf("%w: %g", ErrBadPercentile, o.ThresholdP)
	}
	out := valued(s)
	step := func(f func() (*sparse.CSR, error)) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		next, err := f()
		if err != nil {
			return err
		}
		out = next
		return nil
	}
	if o.CropDiagonal {
		if err := step(func() (*sparse.CSR, error) { return CropDiagonal(out), nil }); err != nil {
			return nil, err
		}
	}
	if o.ThresholdP > 0 {
		if err := step(func() (*sparse.CSR, error) { return RowThreshold(out, o.ThresholdP) }); err != nil {
			return nil, err
		}
	}
	if o.Symmetrize {
		if err := step(func() (*sparse.CSR, error) { return Symmetrize(out) }); err != nil {
			return nil, err
		}
	}
	if o.Diffuse {
		if err := step(func() (*sparse.CSR, error) { return Diffuse(out) }); err != nil {
			return nil, err
		}
	}
	if o.RowMaxNorm {
		if err := step(func() (*sparse.CSR, error) { return RowMaxNorm(out), nil }); err != nil {
			return nil, err
		}
		if o.Symmetrize {
			// Restore value symmetry after the per-row scaling. max(S, Sᵀ)
			// keeps every value ≤ 1 and each non-empty row's unit maximum, so
			// the eigensolver sees a symmetric operator and rows stay max-1.
			if err := step(func() (*sparse.CSR, error) { return Symmetrize(out) }); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// valued returns s itself when it already stores values, else a copy with
// every stored entry set to 1 (pattern similarity matrices are implicit-1).
func valued(s *sparse.CSR) *sparse.CSR {
	if s.Val != nil {
		return s
	}
	c := s.Clone()
	c.Val = make([]float64, len(c.Col))
	for i := range c.Val {
		c.Val[i] = 1
	}
	return c
}

// CropDiagonal returns s with all diagonal entries removed.
func CropDiagonal(s *sparse.CSR) *sparse.CSR {
	s = valued(s)
	n := s.Rows
	keep := make([]int64, n+1)
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cnt := int64(0)
			for _, c := range s.Row(i) {
				if int(c) != i {
					cnt++
				}
			}
			keep[i+1] = cnt
		}
	})
	for i := 0; i < n; i++ {
		keep[i+1] += keep[i]
	}
	col := make([]int32, keep[n])
	val := make([]float64, keep[n])
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := keep[i]
			rc, rv := s.Row(i), s.RowVals(i)
			for k, c := range rc {
				if int(c) != i {
					col[p] = c
					val[p] = rv[k]
					p++
				}
			}
		}
	})
	return &sparse.CSR{Rows: n, Cols: s.Cols, RowPtr: keep, Col: col, Val: val}
}

// RowThreshold applies per-row p-percentile thresholding: for each row the
// nearest-rank p-quantile of the row's values becomes the cutoff, and entries
// strictly below it are dropped. p must be in [0, 1); p = 0 keeps everything.
// The cutoff is non-decreasing in p, so thresholding is monotone: a larger p
// never keeps an entry a smaller p dropped, and nnz never increases.
func RowThreshold(s *sparse.CSR, p float64) (*sparse.CSR, error) {
	if !(p >= 0 && p < 1) { // NaN-safe: NaN fails both comparisons
		return nil, fmt.Errorf("%w: %g", ErrBadPercentile, p)
	}
	s = valued(s)
	n := s.Rows
	keep := make([]int64, n+1)
	cut := make([]float64, n)
	parallel.For(n, rowGrain, func(lo, hi int) {
		var scratch []float64
		for i := lo; i < hi; i++ {
			rv := s.RowVals(i)
			if len(rv) == 0 {
				continue
			}
			scratch = append(scratch[:0], rv...)
			sort.Float64s(scratch)
			// Nearest-rank quantile over the sorted row values: index
			// floor(p·len), clamped. All-equal rows keep every entry.
			idx := int(p * float64(len(scratch)))
			if idx >= len(scratch) {
				idx = len(scratch) - 1
			}
			cut[i] = scratch[idx]
			cnt := int64(0)
			for _, v := range rv {
				if v >= cut[i] {
					cnt++
				}
			}
			keep[i+1] = cnt
		}
	})
	for i := 0; i < n; i++ {
		keep[i+1] += keep[i]
	}
	col := make([]int32, keep[n])
	val := make([]float64, keep[n])
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q := keep[i]
			rc, rv := s.Row(i), s.RowVals(i)
			for k, v := range rv {
				if v >= cut[i] {
					col[q] = rc[k]
					val[q] = v
					q++
				}
			}
		}
	})
	return &sparse.CSR{Rows: n, Cols: s.Cols, RowPtr: keep, Col: col, Val: val}, nil
}

// Symmetrize returns max(S, Sᵀ) elementwise — the union pattern with each
// entry's value the larger of the two orientations. Idempotent: symmetrizing
// a symmetric matrix returns an identical matrix.
func Symmetrize(s *sparse.CSR) (*sparse.CSR, error) {
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, s.Rows, s.Cols)
	}
	s = valued(s)
	t := sparse.Transpose(s)
	n := s.Rows
	keep := make([]int64, n+1)
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keep[i+1] = int64(mergedLen(s.Row(i), t.Row(i)))
		}
	})
	for i := 0; i < n; i++ {
		keep[i+1] += keep[i]
	}
	col := make([]int32, keep[n])
	val := make([]float64, keep[n])
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := keep[i]
			ac, av := s.Row(i), s.RowVals(i)
			bc, bv := t.Row(i), t.RowVals(i)
			x, y := 0, 0
			for x < len(ac) || y < len(bc) {
				switch {
				case y == len(bc) || (x < len(ac) && ac[x] < bc[y]):
					col[p], val[p] = ac[x], av[x]
					x++
				case x == len(ac) || bc[y] < ac[x]:
					col[p], val[p] = bc[y], bv[y]
					y++
				default: // both store (i, c): elementwise max
					col[p] = ac[x]
					val[p] = av[x]
					if bv[y] > val[p] {
						val[p] = bv[y]
					}
					x++
					y++
				}
				p++
			}
		}
	})
	return &sparse.CSR{Rows: n, Cols: n, RowPtr: keep, Col: col, Val: val}, nil
}

// mergedLen counts the union of two sorted unique index slices.
func mergedLen(a, b []int32) int {
	n, x, y := 0, 0, 0
	for x < len(a) || y < len(b) {
		switch {
		case y == len(b) || (x < len(a) && a[x] < b[y]):
			x++
		case x == len(a) || b[y] < a[x]:
			y++
		default:
			x++
			y++
		}
		n++
	}
	return n
}

// Diffuse returns S·Sᵀ — two-hop similarity propagation. (S·Sᵀ)ᵀ = S·Sᵀ, so
// the output is symmetric in both pattern and values for any input.
func Diffuse(s *sparse.CSR) (*sparse.CSR, error) {
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, s.Rows, s.Cols)
	}
	s = valued(s)
	return sparse.SpGEMM(s, sparse.Transpose(s))
}

// RowMaxNorm scales every row by its maximum value, so each non-empty row has
// maximum exactly 1. Rows whose maximum is 0 (or non-finite) are left as-is.
func RowMaxNorm(s *sparse.CSR) *sparse.CSR {
	s = valued(s)
	out := s.Clone()
	n := out.Rows
	parallel.For(n, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rv := out.RowVals(i)
			max := 0.0
			for _, v := range rv {
				if v > max {
					max = v
				}
			}
			if max > 0 && !isInfOrNaN(max) {
				// True division, not multiply-by-reciprocal: x/x is exactly 1
				// in IEEE arithmetic, so the max-1 property holds bit-exactly.
				for k := range rv {
					rv[k] /= max
				}
			}
		}
	})
	return out
}

func isInfOrNaN(v float64) bool { return v != v || v > 1.797693134862315708e308 }
