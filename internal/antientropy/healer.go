package antientropy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planverify"
	"bootes/internal/ring"
)

// Config assembles a Healer.
type Config struct {
	// Cache is the local plan cache the healer repairs (required).
	Cache *plancache.Cache
	// Ring returns the current consistent-hash ring (required). A func so
	// the healer always sees the router's live view; today the ring is fixed
	// per process, but repair recomputes ownership every round regardless.
	Ring func() *ring.Ring
	// Self is this node's ring name / advertised URL (required).
	Self string
	// Replicas is the replica-set size per key (default 2).
	Replicas int
	// Client is the HTTP client for digest, fill, and push requests; nil
	// builds one with a sane timeout.
	Client *http.Client
	// PeerUp reports the router's health view of a peer; nil assumes every
	// peer is up. A down peer is skipped by repair and its writes are parked
	// as hints.
	PeerUp func(peer string) bool
	// RepairInterval is the digest-exchange period (default 30s).
	RepairInterval time.Duration
	// ScrubInterval is the per-entry scrub pacing: one locally cached entry
	// is re-read from disk per tick (default 5s), so a full pass over a
	// cache of N entries takes N·ScrubInterval — a deliberate trickle that
	// never competes with serving for disk bandwidth.
	ScrubInterval time.Duration
	// FetchTimeout bounds one digest fetch, entry pull, or entry push
	// (default 2s).
	FetchTimeout time.Duration
	// MaxHintsPerPeer bounds the hint spool per down peer (default 1024);
	// beyond it hints are dropped and counted — anti-entropy repair is the
	// backstop for what the spool will not hold.
	MaxHintsPerPeer int
	// HintDir is the hint spool directory (default <cache dir>/hints —
	// plancache.Open skips subdirectories, so the spool nests safely).
	HintDir string
	// Metrics is the registry the bootes_antientropy_* / bootes_scrub_*
	// families register on; nil uses a private registry.
	Metrics *obs.Registry
	// Logf sinks healing diagnostics; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Stats is the healer's counter snapshot, embedded in /statsz.
type Stats struct {
	// RepairRounds counts digest-exchange rounds; RepairedMissing /
	// RepairedDivergent count entries pulled because a peer had them and we
	// did not / because the replicas disagreed byte-wise.
	RepairRounds, RepairedMissing, RepairedDivergent int64
	// Dropped counts entries deleted because the ring no longer assigns
	// them here (after handing them to their owners).
	Dropped int64
	// Pushes / PushFailures count replication and handoff PUTs.
	Pushes, PushFailures int64
	// FetchFailures counts failed digest or entry pulls.
	FetchFailures int64
	// HintsWritten / HintsDelivered / HintsDropped / HintsPending track the
	// hinted-handoff spool.
	HintsWritten, HintsDelivered, HintsDropped, HintsPending int64
	// WarmupFetched counts entries streamed from replicas during start-up
	// warm-up, before readiness flipped.
	WarmupFetched int64
	// ScrubPasses / ScrubErrors / ScrubRepaired count scrubbed entries,
	// entries that failed the re-read, and failed entries restored from a
	// peer.
	ScrubPasses, ScrubErrors, ScrubRepaired int64
}

// Healer runs the anti-entropy loops for one node. Build with New, start the
// background loops with Start, stop with Stop (joins all goroutines).
type Healer struct {
	cfg    Config
	client *http.Client
	hints  *hintStore
	logf   func(string, ...any)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	peerUpCh chan string

	mu        sync.Mutex
	scrubNext string // cursor: first key after the last scrubbed one

	repairRounds                       *obs.Counter
	repaired                           *obs.CounterVec // kind=missing|divergent
	dropped                            *obs.Counter
	pushes, pushFails                  *obs.Counter
	fetchFails                         *obs.Counter
	hintsWritten, hintsDelivered       *obs.Counter
	hintsDropped                       *obs.Counter
	warmupFetched                      *obs.Counter
	scrubPasses, scrubErrs, scrubFixed *obs.Counter
}

// New validates cfg and builds the healer. No goroutines start until Start.
func New(cfg Config) (*Healer, error) {
	if cfg.Cache == nil {
		return nil, fmt.Errorf("antientropy: Config.Cache is required")
	}
	if cfg.Ring == nil {
		return nil, fmt.Errorf("antientropy: Config.Ring is required")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("antientropy: Config.Self is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.RepairInterval <= 0 {
		cfg.RepairInterval = 30 * time.Second
	}
	if cfg.ScrubInterval <= 0 {
		cfg.ScrubInterval = 5 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	if cfg.MaxHintsPerPeer <= 0 {
		cfg.MaxHintsPerPeer = 1024
	}
	if cfg.HintDir == "" {
		cfg.HintDir = cfg.Cache.Dir() + "/hints"
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	h := &Healer{
		cfg:      cfg,
		client:   cfg.Client,
		hints:    &hintStore{dir: cfg.HintDir, maxPerPeer: cfg.MaxHintsPerPeer},
		logf:     cfg.Logf,
		stop:     make(chan struct{}),
		peerUpCh: make(chan string, 32),
	}
	h.registerMetrics(cfg.Metrics)
	return h, nil
}

func (h *Healer) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h.repairRounds = reg.Counter("bootes_antientropy_repair_rounds_total", "Digest-exchange repair rounds completed.")
	h.repaired = reg.CounterVec("bootes_antientropy_repaired_total", "Entries repaired from a peer, by cause.", "kind")
	h.dropped = reg.Counter("bootes_antientropy_dropped_total", "Entries deleted after the ring reassigned them elsewhere.")
	h.pushes = reg.Counter("bootes_antientropy_pushes_total", "Entry replication/handoff pushes to peers.")
	h.pushFails = reg.Counter("bootes_antientropy_push_failures_total", "Entry pushes that failed (transport error or non-2xx).")
	h.fetchFails = reg.Counter("bootes_antientropy_fetch_failures_total", "Digest or entry fetches that failed.")
	h.hintsWritten = reg.Counter("bootes_antientropy_hints_written_total", "Writes parked as durable hints for a down replica.")
	h.hintsDelivered = reg.Counter("bootes_antientropy_hints_delivered_total", "Parked hints delivered after the replica recovered.")
	h.hintsDropped = reg.Counter("bootes_antientropy_hints_dropped_total", "Hints dropped by the per-peer spool bound.")
	h.warmupFetched = reg.Counter("bootes_antientropy_warmup_fetched_total", "Entries streamed from replicas during start-up warm-up.")
	h.scrubPasses = reg.Counter("bootes_scrub_passes_total", "Cache entries re-read and re-verified by the scrubber.")
	h.scrubErrs = reg.Counter("bootes_scrub_errors_total", "Scrubbed entries that failed verification and were quarantined.")
	h.scrubFixed = reg.Counter("bootes_scrub_repaired_total", "Quarantined entries restored from a peer replica.")
	reg.GaugeFunc("bootes_antientropy_hints_pending", "Hints currently parked for down replicas.", h.hints.pending)
}

// Stats snapshots the healer's counters.
func (h *Healer) Stats() Stats {
	return Stats{
		RepairRounds:      h.repairRounds.Value(),
		RepairedMissing:   h.repaired.With("missing").Value(),
		RepairedDivergent: h.repaired.With("divergent").Value(),
		Dropped:           h.dropped.Value(),
		Pushes:            h.pushes.Value(),
		PushFailures:      h.pushFails.Value(),
		FetchFailures:     h.fetchFails.Value(),
		HintsWritten:      h.hintsWritten.Value(),
		HintsDelivered:    h.hintsDelivered.Value(),
		HintsDropped:      h.hintsDropped.Value(),
		HintsPending:      h.hints.pending(),
		WarmupFetched:     h.warmupFetched.Value(),
		ScrubPasses:       h.scrubPasses.Value(),
		ScrubErrors:       h.scrubErrs.Value(),
		ScrubRepaired:     h.scrubFixed.Value(),
	}
}

// owns reports whether the ring assigns key's replica set to this node.
func (h *Healer) owns(key string) bool {
	return h.cfg.Ring().OwnedBy(key, h.cfg.Self, h.cfg.Replicas)
}

// peerUp consults the router's health view; with no view every peer is
// assumed reachable and failures surface as push/fetch errors.
func (h *Healer) peerUp(peer string) bool {
	if h.cfg.PeerUp == nil {
		return true
	}
	return h.cfg.PeerUp(peer)
}

// Start launches the background loops: periodic digest repair, the scrub
// trickle, and hint delivery on peer recovery. One goroutine runs all three
// — healing work is strictly sequential per node, so a slow repair round
// simply delays the next scrub tick instead of piling up.
func (h *Healer) Start() {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		repair := time.NewTicker(h.cfg.RepairInterval)
		defer repair.Stop()
		scrub := time.NewTicker(h.cfg.ScrubInterval)
		defer scrub.Stop()
		for {
			select {
			case <-h.stop:
				return
			case peer := <-h.peerUpCh:
				ctx, cancel := h.opCtx()
				h.deliverHints(ctx, peer)
				cancel()
			case <-repair.C:
				h.RepairOnce(context.Background())
			case <-scrub.C:
				h.scrubOnce()
			}
		}
	}()
}

// Stop halts the loops and joins the goroutine. Idempotent.
func (h *Healer) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
}

// NotifyPeerUp tells the healer a peer transitioned down→up (the router's
// OnPeerUp hook): parked hints for it are delivered on the healing
// goroutine. Non-blocking — if the queue is full the periodic repair round
// delivers instead.
func (h *Healer) NotifyPeerUp(peer string) {
	select {
	case h.peerUpCh <- peer:
	default:
	}
}

// opCtx bounds one network operation.
func (h *Healer) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), h.cfg.FetchTimeout)
}

// Replicate synchronously pushes key's freshly written entry to the other
// members of its replica set, parking a durable hint for any replica that is
// down or fails the push. planserve calls it after the pipeline's cache
// write, on the request goroutine — replication cost is bounded by
// FetchTimeout per replica and plans are minutes of compute, so the
// milliseconds of synchronous push are noise against losing the plan with
// the node.
func (h *Healer) Replicate(key string) {
	data, ok := h.encodeLocal(key)
	if !ok {
		return
	}
	for _, rep := range h.cfg.Ring().Replicas(key, h.cfg.Replicas) {
		if rep == h.cfg.Self {
			continue
		}
		if !h.peerUp(rep) {
			h.parkHint(rep, key, data)
			continue
		}
		ctx, cancel := h.opCtx()
		err := h.pushEntry(ctx, rep, key, data)
		cancel()
		if err != nil {
			h.logf("antientropy: replicate %.12s to %s failed, parking hint: %v", key, rep, err)
			h.parkHint(rep, key, data)
		}
	}
}

// encodeLocal returns key's entry as its canonical encoded bytes.
func (h *Healer) encodeLocal(key string) ([]byte, bool) {
	e, ok := h.cfg.Cache.Peek(key)
	if !ok {
		return nil, false
	}
	data, err := plancache.EncodeEntry(e)
	if err != nil {
		return nil, false
	}
	return data, true
}

// parkHint spools one write for a down replica.
func (h *Healer) parkHint(peer, key string, data []byte) {
	stored, err := h.hints.put(peer, key, data)
	switch {
	case err != nil:
		h.logf("antientropy: parking hint %.12s for %s failed: %v", key, peer, err)
		h.hintsDropped.Inc()
	case !stored:
		h.hintsDropped.Inc()
	default:
		h.hintsWritten.Inc()
	}
}

// deliverHints replays the parked hints for one recovered peer, in key
// order, stopping at the first failure (the peer flapped; retry on the next
// recovery or repair round).
func (h *Healer) deliverHints(ctx context.Context, peer string) {
	keys, err := h.hints.keys(peer)
	if err != nil || len(keys) == 0 {
		return
	}
	for _, key := range keys {
		data, err := h.hints.load(peer, key)
		if err != nil {
			continue // corrupt hint, already removed
		}
		if err := h.pushEntry(ctx, peer, key, data); err != nil {
			h.logf("antientropy: hint delivery %.12s to %s failed: %v", key, peer, err)
			return
		}
		h.hints.remove(peer, key)
		h.hintsDelivered.Inc()
	}
}

// RepairOnce runs one digest-exchange round against every up peer: deliver
// any parked hints, pull entries the peer holds for keys this node owns but
// lacks, resolve divergent copies toward the canonical bytes, and finally
// hand off + drop entries the ring no longer assigns here.
func (h *Healer) RepairOnce(ctx context.Context) {
	h.repairRounds.Inc()
	r := h.cfg.Ring()
	for _, peer := range r.Nodes() {
		if peer == h.cfg.Self || !h.peerUp(peer) {
			continue
		}
		h.deliverHints(ctx, peer)
		dg, err := h.fetchDigest(ctx, peer, "")
		if err != nil {
			h.fetchFails.Inc()
			continue
		}
		d := ComputeDiff(h.cfg.Cache, dg, h.owns)
		for _, key := range d.Missing {
			if h.pullEntry(ctx, peer, key) {
				h.repaired.With("missing").Inc()
			}
		}
		for _, key := range d.Divergent {
			h.resolveDivergent(ctx, peer, key)
		}
		if ctx.Err() != nil {
			return
		}
	}
	h.dropNotOwned(ctx)
}

// pullEntry fetches key from peer through the verified fill path and stores
// it locally. Reports whether the local cache changed.
func (h *Healer) pullEntry(ctx context.Context, peer, key string) bool {
	e, err := h.fetchEntry(ctx, peer, key)
	if err != nil {
		h.fetchFails.Inc()
		return false
	}
	if err := h.cfg.Cache.Put(e); err != nil {
		h.logf("antientropy: storing pulled entry %.12s from %s: %v", key, peer, err)
		return false
	}
	return true
}

// resolveDivergent converges one key two replicas hold with different
// bytes: fetch the peer's copy and adopt it iff it is the canonical
// (lexicographically smaller) encoded byte string. The rule is symmetric —
// the peer's own repair round compares the same two byte strings and keeps
// the same winner — so the replica set converges no matter who repairs
// first.
func (h *Healer) resolveDivergent(ctx context.Context, peer, key string) {
	local, ok := h.encodeLocal(key)
	if !ok {
		return
	}
	e, err := h.fetchEntry(ctx, peer, key)
	if err != nil {
		h.fetchFails.Inc()
		return
	}
	remote, err := plancache.EncodeEntry(e)
	if err != nil {
		return
	}
	if bytes.Compare(remote, local) >= 0 {
		return // local copy is canonical; the peer will adopt ours
	}
	if err := h.cfg.Cache.Put(e); err != nil {
		h.logf("antientropy: adopting canonical entry %.12s from %s: %v", key, peer, err)
		return
	}
	h.repaired.With("divergent").Inc()
}

// dropNotOwned hands entries the ring no longer assigns here to their
// current replicas, then deletes them locally. An entry is only dropped
// after at least one replica acknowledged holding it — never destroy the
// last copy.
func (h *Healer) dropNotOwned(ctx context.Context) {
	for _, key := range h.cfg.Cache.Keys() {
		if h.owns(key) {
			continue
		}
		data, ok := h.encodeLocal(key)
		if !ok {
			continue
		}
		handed := false
		for _, rep := range h.cfg.Ring().Replicas(key, h.cfg.Replicas) {
			if rep == h.cfg.Self || !h.peerUp(rep) {
				continue
			}
			if err := h.pushEntry(ctx, rep, key, data); err == nil {
				handed = true
			}
		}
		if !handed {
			continue // keep the entry until an owner takes it
		}
		if err := h.cfg.Cache.Delete(key); err != nil {
			h.logf("antientropy: dropping unowned entry %.12s: %v", key, err)
			continue
		}
		h.dropped.Inc()
	}
}

// scrubOnce re-reads the next locally cached entry from disk. A verification
// failure quarantines the entry (inside Cache.Scrub) and immediately
// attempts repair from the key's other replicas.
func (h *Healer) scrubOnce() {
	keys := h.cfg.Cache.Keys()
	if len(keys) == 0 {
		return
	}
	h.mu.Lock()
	key := keys[0]
	for _, k := range keys {
		if k >= h.scrubNext {
			key = k
			break
		}
	}
	h.scrubNext = key + "\x00" // strictly after key next tick, wrapping at the end
	h.mu.Unlock()

	h.scrubPasses.Inc()
	if err := h.cfg.Cache.Scrub(key); err == nil {
		return
	} else {
		h.logf("antientropy: scrub quarantined %.12s, repairing from peers: %v", key, err)
	}
	h.scrubErrs.Inc()
	ctx, cancel := h.opCtx()
	defer cancel()
	for _, rep := range h.cfg.Ring().Replicas(key, h.cfg.Replicas) {
		if rep == h.cfg.Self || !h.peerUp(rep) {
			continue
		}
		if h.pullEntry(ctx, rep, key) {
			h.scrubFixed.Inc()
			return
		}
	}
}

// Warmup streams this node's owned keys from its current replicas: fetch
// each up peer's digest, pull every owned key the local cache lacks. Called
// by bootesd before flipping readiness, under the warm-up deadline — on
// ctx expiry it returns what it has; anti-entropy finishes the rest in the
// background. Returns the number of entries fetched.
func (h *Healer) Warmup(ctx context.Context) int {
	fetched := 0
	for _, peer := range h.cfg.Ring().Nodes() {
		if peer == h.cfg.Self || !h.peerUp(peer) {
			continue
		}
		dg, err := h.fetchDigest(ctx, peer, "")
		if err != nil {
			if ctx.Err() != nil {
				return fetched
			}
			h.fetchFails.Inc()
			continue
		}
		d := ComputeDiff(h.cfg.Cache, dg, h.owns)
		for _, key := range d.Missing {
			if ctx.Err() != nil {
				return fetched
			}
			if h.pullEntry(ctx, peer, key) {
				h.warmupFetched.Inc()
				fetched++
			}
		}
	}
	return fetched
}

// DrainPush pushes this node's entries to the other members of each key's
// replica set before the listener closes, so a graceful drain never takes
// the only copy of a plan with it. Peers that already hold a key (per their
// digest) are skipped.
func (h *Healer) DrainPush(ctx context.Context) {
	has := make(map[string]map[string]bool) // peer → key set, from digests
	for _, key := range h.cfg.Cache.Keys() {
		if ctx.Err() != nil {
			return
		}
		data, ok := h.encodeLocal(key)
		if !ok {
			continue
		}
		for _, rep := range h.cfg.Ring().Replicas(key, h.cfg.Replicas) {
			if rep == h.cfg.Self || !h.peerUp(rep) {
				continue
			}
			if _, polled := has[rep]; !polled {
				keys := map[string]bool{}
				if dg, err := h.fetchDigest(ctx, rep, ""); err == nil {
					for _, de := range dg.Entries {
						keys[de.Key] = true
					}
				}
				has[rep] = keys
			}
			if has[rep][key] {
				continue
			}
			if err := h.pushEntry(ctx, rep, key, data); err == nil {
				has[rep][key] = true
			}
		}
	}
}

// HintsPending reports the parked-hint backlog (tests and the chaos
// harness's drained-spool invariant).
func (h *Healer) HintsPending() int64 { return h.hints.pending() }

// fetchDigest GETs one peer's cache digest.
func (h *Healer) fetchDigest(ctx context.Context, peer, prefix string) (Digest, error) {
	url := peer + "/v1/cache/digest"
	if prefix != "" {
		url += "?prefix=" + prefix
	}
	ctx, cancel := context.WithTimeout(ctx, h.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Digest{}, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return Digest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return Digest{}, fmt.Errorf("antientropy: digest from %s: status %d", peer, resp.StatusCode)
	}
	var d Digest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&d); err != nil {
		return Digest{}, fmt.Errorf("antientropy: digest from %s: %w", peer, err)
	}
	return d, nil
}

// fetchEntry GETs one entry from a peer's cache and verifies it end to end:
// container decode (CRC), key match, and plan-field invariants — the same
// bar the fleet's peer-fill path applies. Degraded entries are rejected
// outright; they must never replicate.
func (h *Healer) fetchEntry(ctx context.Context, peer, key string) (*plancache.Entry, error) {
	ctx, cancel := context.WithTimeout(ctx, h.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("antientropy: entry %.12s from %s: status %d", key, peer, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	e, err := plancache.DecodeEntry(data)
	if err != nil {
		return nil, fmt.Errorf("antientropy: entry %.12s from %s: %w", key, peer, err)
	}
	if e.Key != key {
		return nil, fmt.Errorf("antientropy: entry %.12s from %s holds key %.12s", key, peer, e.Key)
	}
	if vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason); len(vs) > 0 {
		return nil, fmt.Errorf("antientropy: entry %.12s from %s failed verification: %v", key, peer, vs)
	}
	if e.Degraded {
		return nil, fmt.Errorf("antientropy: entry %.12s from %s is degraded", key, peer)
	}
	return e, nil
}

// pushEntry PUTs one encoded entry to a peer's cache. The receiver verifies
// and applies the same canonical-bytes conflict rule resolveDivergent uses,
// so pushing is always safe: it can only add a missing entry or lose to a
// canonical one.
func (h *Healer) pushEntry(ctx context.Context, peer, key string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, h.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/cache/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := h.client.Do(req)
	if err != nil {
		h.pushFails.Inc()
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode >= 300 {
		h.pushFails.Inc()
		return fmt.Errorf("antientropy: push %.12s to %s: status %d", key, peer, resp.StatusCode)
	}
	h.pushes.Inc()
	return nil
}
