package antientropy

import (
	"encoding/base64"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bootes/internal/plancache"
	"bootes/internal/plancache/atomicio"
)

// hintExt is the hint file extension. A hint file holds the raw encoded
// entry (the same CRC-checked BPLN container the cache stores), so a hint is
// self-validating: replay decodes and verifies it exactly like a peer fill.
const hintExt = ".hint"

// hintStore parks writes destined for a down replica under
// <dir>/<base64url(peerURL)>/<key>.hint, published through atomicio so a
// crash mid-park leaves no torn hint. Hints survive restarts — a node that
// crashes with parked hints delivers them after it comes back.
type hintStore struct {
	dir string
	// maxPerPeer bounds parked hints per peer; beyond it new hints are
	// dropped (counted by the healer) — anti-entropy repair is the backstop
	// for what the spool will not hold.
	maxPerPeer int
}

// peerDir maps a peer URL to its spool directory. Base64url because peer
// URLs contain characters ("/", ":") that must not introduce path structure.
func (h *hintStore) peerDir(peer string) string {
	return filepath.Join(h.dir, base64.URLEncoding.EncodeToString([]byte(peer)))
}

// put parks one entry for peer. Returns (false, nil) when the per-peer bound
// is reached and the hint was dropped.
func (h *hintStore) put(peer, key string, data []byte) (bool, error) {
	dir := h.peerDir(peer)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	if h.maxPerPeer > 0 {
		n, err := h.count(peer)
		if err != nil {
			return false, err
		}
		if n >= h.maxPerPeer {
			return false, nil
		}
	}
	return true, atomicio.WriteFileBytes(filepath.Join(dir, key+hintExt), data)
}

// keys lists the parked hint keys for peer, sorted — replay order is
// deterministic (ascending key), which the design doc documents: hints carry
// idempotent content-addressed entries, so order affects nothing but is
// pinned anyway for reproducible tests.
func (h *hintStore) keys(peer string) ([]string, error) {
	des, err := os.ReadDir(h.peerDir(peer))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.Contains(name, atomicio.TempSuffix) || !strings.HasSuffix(name, hintExt) {
			continue
		}
		out = append(out, strings.TrimSuffix(name, hintExt))
	}
	sort.Strings(out)
	return out, nil
}

// load reads and validates one parked hint. A hint that no longer decodes
// (disk fault while parked) is deleted rather than delivered.
func (h *hintStore) load(peer, key string) ([]byte, error) {
	path := filepath.Join(h.peerDir(peer), key+hintExt)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, err := plancache.DecodeEntry(data)
	if err != nil {
		_ = os.Remove(path)
		return nil, fmt.Errorf("antientropy: corrupt hint %.12s for %s: %w", key, peer, err)
	}
	if e.Key != key {
		_ = os.Remove(path)
		return nil, fmt.Errorf("antientropy: hint %.12s for %s holds entry %.12s", key, peer, e.Key)
	}
	return data, nil
}

// remove deletes a delivered hint.
func (h *hintStore) remove(peer, key string) {
	_ = os.Remove(filepath.Join(h.peerDir(peer), key+hintExt))
}

// peers lists every peer with at least one parked hint.
func (h *hintStore) peers() ([]string, error) {
	des, err := os.ReadDir(h.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		raw, err := base64.URLEncoding.DecodeString(de.Name())
		if err != nil {
			continue // not a spool directory
		}
		if ks, err := h.keys(string(raw)); err == nil && len(ks) > 0 {
			out = append(out, string(raw))
		}
	}
	sort.Strings(out)
	return out, nil
}

// pending counts parked hints across all peers (the gauge view).
func (h *hintStore) pending() int64 {
	var n int64
	peers, err := h.peers()
	if err != nil {
		return 0
	}
	for _, p := range peers {
		ks, err := h.keys(p)
		if err != nil {
			continue
		}
		n += int64(len(ks))
	}
	return n
}

// count counts parked hints for one peer.
func (h *hintStore) count(peer string) (int, error) {
	ks, err := h.keys(peer)
	return len(ks), err
}
