// Package antientropy is the fleet's self-healing layer: it keeps every
// replica set of the content-addressed plan cache converged without operator
// action, so a crashed, restarted, or bit-rotted node returns to its exact
// owned key set instead of waiting for traffic to repopulate it.
//
// Four mechanisms, all background, all bounded:
//
//   - Digest exchange + repair: every node serves GET /v1/cache/digest — a
//     sorted key → (size, CRC32) summary of its cache — and a repair loop
//     diffs the local index against each peer's digest, pulling missing
//     entries through the verified /v1/cache/{key} fill path and dropping
//     entries the ring no longer assigns to this node.
//   - Hinted handoff: when replication finds a replica down, the write is
//     parked as a durable hint file (the atomicio spool pattern) and
//     delivered when the prober observes recovery.
//   - Warm-up on join / push on drain: a starting node streams its owned
//     keys from current replicas before readiness flips; a draining node
//     pushes its entries to the surviving replicas before the listener
//     closes.
//   - Scrubbing: a low-rate pass re-reads local entries from disk, routes
//     CRC/decode failures through quarantine, and repairs from peers.
//
// Convergence argument: every entry is content-addressed and verified on
// every transfer, so repair can only move a replica toward holding the same
// bytes as its peers. When two replicas hold decodable-but-different bytes
// for one key, both sides adopt the lexicographically smaller encoded byte
// string — a symmetric, deterministic rule, so the replica set converges to
// one canonical entry no matter which side repairs first. Each repair round
// strictly shrinks the diff (missing keys are pulled, divergent keys adopt
// the canonical bytes, unowned keys are handed off then dropped), so a
// quiescent fleet reaches digest equality in O(1) rounds per disturbance.
package antientropy

import (
	"sort"
	"strings"

	"bootes/internal/plancache"
)

// DigestEntry is one key's summary in a cache digest: enough to detect a
// missing or divergent replica without transferring or decoding the entry.
type DigestEntry struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// Digest is the GET /v1/cache/digest payload: every cached key's summary in
// ascending key order (the order plancache.Keys guarantees).
type Digest struct {
	Entries []DigestEntry `json:"entries"`
}

// DigestOf summarizes a cache, optionally restricted to keys with the given
// prefix (range partitioning for large caches: hex keys split evenly by
// first byte). Entries are in ascending key order.
func DigestOf(c *plancache.Cache, prefix string) Digest {
	keys := c.Keys()
	d := Digest{Entries: make([]DigestEntry, 0, len(keys))}
	for _, k := range keys {
		if prefix != "" && !strings.HasPrefix(k, prefix) {
			continue
		}
		if st, ok := c.Stat(k); ok {
			d.Entries = append(d.Entries, DigestEntry{Key: k, Size: st.Size, CRC: st.CRC})
		}
	}
	return d
}

// Diff is the repair work implied by comparing a local cache against one
// peer's digest, under an ownership predicate.
type Diff struct {
	// Missing keys appear in the peer's digest, are owned locally, and are
	// absent from the local cache: pull them.
	Missing []string
	// Divergent keys are present on both sides with different (size, CRC):
	// fetch the peer's bytes and adopt whichever copy is canonical.
	Divergent []string
	// NotOwned keys are held locally but no longer assigned to this node by
	// the ring: hand them to their owners, then drop them.
	NotOwned []string
}

// ComputeDiff compares the local cache against a peer digest. owns reports
// whether the ring assigns a key to this node. The same function backs both
// the repair loop and the ring-churn agreement test, so what the tests prove
// about ring movement is exactly what the healer will do.
func ComputeDiff(c *plancache.Cache, peer Digest, owns func(key string) bool) Diff {
	var d Diff
	for _, pe := range peer.Entries {
		if !owns(pe.Key) {
			continue
		}
		st, ok := c.Stat(pe.Key)
		switch {
		case !ok:
			d.Missing = append(d.Missing, pe.Key)
		case st.Size != pe.Size || st.CRC != pe.CRC:
			d.Divergent = append(d.Divergent, pe.Key)
		}
	}
	for _, k := range c.Keys() {
		if !owns(k) {
			d.NotOwned = append(d.NotOwned, k)
		}
	}
	sort.Strings(d.Missing)
	sort.Strings(d.Divergent)
	sort.Strings(d.NotOwned)
	return d
}
