package antientropy

import (
	"os"
	"path/filepath"
	"testing"

	"bootes/internal/plancache"
	"bootes/internal/sparse"
)

// spoolEntry builds a valid encoded entry under an arbitrary filename-safe
// key (the spool never decodes the plan's matrix, only the container).
func spoolEntry(t *testing.T, key string, rows int) []byte {
	t.Helper()
	perm := make(sparse.Permutation, rows)
	for i := range perm {
		perm[i] = int32(rows - 1 - i)
	}
	data, err := plancache.EncodeEntry(&plancache.Entry{Key: key, Perm: perm, Reordered: true, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHintStoreRoundTrip(t *testing.T) {
	h := &hintStore{dir: t.TempDir(), maxPerPeer: 2}
	peer := "http://127.0.0.1:9999"

	if ks, err := h.keys(peer); err != nil || len(ks) != 0 {
		t.Fatalf("fresh spool keys = %v, %v", ks, err)
	}
	if h.pending() != 0 {
		t.Fatal("fresh spool pending != 0")
	}

	dataB := spoolEntry(t, "bbb", 8)
	dataA := spoolEntry(t, "aaa", 8)
	for _, kv := range []struct {
		k string
		d []byte
	}{{"bbb", dataB}, {"aaa", dataA}} {
		stored, err := h.put(peer, kv.k, kv.d)
		if err != nil || !stored {
			t.Fatalf("put %s = (%v, %v)", kv.k, stored, err)
		}
	}

	// Replay order is deterministic: ascending key, regardless of park order.
	ks, err := h.keys(peer)
	if err != nil || len(ks) != 2 || ks[0] != "aaa" || ks[1] != "bbb" {
		t.Fatalf("keys = %v, %v", ks, err)
	}
	if got := h.pending(); got != 2 {
		t.Fatalf("pending = %d", got)
	}
	if ps, err := h.peers(); err != nil || len(ps) != 1 || ps[0] != peer {
		t.Fatalf("peers = %v, %v", ps, err)
	}

	// The per-peer bound refuses the third hint without error.
	if stored, err := h.put(peer, "ccc", spoolEntry(t, "ccc", 8)); err != nil || stored {
		t.Fatalf("over-bound put = (%v, %v), want dropped", stored, err)
	}

	// Load validates; a corrupt hint is deleted, not delivered.
	if data, err := h.load(peer, "aaa"); err != nil || len(data) == 0 {
		t.Fatalf("load = %v", err)
	}
	hintPath := filepath.Join(h.peerDir(peer), "bbb"+hintExt)
	raw, err := os.ReadFile(hintPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(hintPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := h.load(peer, "bbb"); err == nil {
		t.Fatal("corrupt hint loaded")
	}
	if _, err := os.Stat(hintPath); !os.IsNotExist(err) {
		t.Fatal("corrupt hint not deleted")
	}

	h.remove(peer, "aaa")
	if h.pending() != 0 {
		t.Fatalf("pending after remove = %d", h.pending())
	}

	// Hints nest inside the cache directory without confusing the entry scan:
	// plancache.Open skips subdirectories.
	cacheDir := t.TempDir()
	h2 := &hintStore{dir: filepath.Join(cacheDir, "hints")}
	if _, err := h2.put(peer, "ddd", spoolEntry(t, "ddd", 8)); err != nil {
		t.Fatal(err)
	}
	c, err := plancache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("hint spool leaked into the cache index")
	}
	if h2.pending() != 1 {
		t.Fatal("cache open disturbed the spool")
	}
}
