// End-to-end healer tests: every peer is a real planserve server (the same
// handler stack production runs), so digest fetches, pulls, pushes, and hint
// deliveries ride the actual HTTP endpoints. External test package because
// planserve imports antientropy.
package antientropy_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bootes/internal/antientropy"
	"bootes/internal/plancache"
	"bootes/internal/planserve"
	"bootes/internal/reorder"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

// peer is one fake fleet member: a cache behind a real planserve handler.
type peer struct {
	cache *plancache.Cache
	srv   *planserve.Server
	ts    *httptest.Server
}

func newPeer(t *testing.T) *peer {
	t.Helper()
	cache, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := planserve.New(planserve.Config{
		Plan: func(context.Context, *sparse.CSR, int) (*reorder.Result, error) {
			return nil, errors.New("healer tests never plan")
		},
		Cache: cache,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &peer{cache: cache, srv: srv, ts: ts}
}

// mkEntry builds a valid entry under an arbitrary filename-safe key.
func mkEntry(t *testing.T, key string, k int) *plancache.Entry {
	t.Helper()
	const rows = 16
	perm := make(sparse.Permutation, rows)
	for i := range perm {
		perm[i] = int32(rows - 1 - i)
	}
	return &plancache.Entry{Key: key, Perm: perm, Reordered: true, K: k}
}

// newHealer builds a healer for self over the given peers' URLs.
func newHealer(t *testing.T, self *peer, cfg antientropy.Config, peers ...*peer) *antientropy.Healer {
	t.Helper()
	urls := []string{self.ts.URL}
	for _, p := range peers {
		urls = append(urls, p.ts.URL)
	}
	r, err := ring.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = self.cache
	cfg.Ring = func() *ring.Ring { return r }
	cfg.Self = self.ts.URL
	if cfg.Replicas == 0 {
		cfg.Replicas = len(urls)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	h, err := antientropy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestReplicateAndHintedHandoff: a fresh write replicates to an up peer
// synchronously; with the peer down it parks a durable hint that survives a
// healer restart and is delivered by the next repair round after recovery.
func TestReplicateAndHintedHandoff(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	up := true
	hintDir := filepath.Join(a.cache.Dir(), "hints")
	cfg := antientropy.Config{PeerUp: func(string) bool { return up }, HintDir: hintDir}
	h := newHealer(t, a, cfg, b)

	e1 := mkEntry(t, "key-live", 4)
	if err := a.cache.Put(e1); err != nil {
		t.Fatal(err)
	}
	h.Replicate(e1.Key)
	if _, ok := b.cache.Peek(e1.Key); !ok {
		t.Fatal("live replicate did not reach the peer")
	}
	if st := h.Stats(); st.Pushes != 1 || st.HintsWritten != 0 {
		t.Fatalf("stats after live replicate: %+v", st)
	}

	// Peer down: the write parks as a hint.
	up = false
	e2 := mkEntry(t, "key-parked", 8)
	if err := a.cache.Put(e2); err != nil {
		t.Fatal(err)
	}
	h.Replicate(e2.Key)
	if _, ok := b.cache.Peek(e2.Key); ok {
		t.Fatal("replicate reached a down peer")
	}
	if st := h.Stats(); st.HintsWritten != 1 || st.HintsPending != 1 {
		t.Fatalf("stats after parked replicate: %+v", st)
	}

	// The hint survives a healer restart (same spool dir), like a process
	// crash between park and delivery.
	h2 := newHealer(t, a, antientropy.Config{PeerUp: func(string) bool { return up }, HintDir: hintDir}, b)
	if h2.HintsPending() != 1 {
		t.Fatal("hint lost across healer restart")
	}

	// Recovery: the repair round delivers and clears the spool.
	up = true
	h2.RepairOnce(context.Background())
	if _, ok := b.cache.Peek(e2.Key); !ok {
		t.Fatal("hint not delivered after recovery")
	}
	if st := h2.Stats(); st.HintsDelivered != 1 || st.HintsPending != 0 {
		t.Fatalf("stats after delivery: %+v", st)
	}
}

// TestRepairPullsMissing: a repair round pulls owned keys a peer holds that
// the local cache lacks, and converges the digests.
func TestRepairPullsMissing(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	for i := 0; i < 4; i++ {
		if err := b.cache.Put(mkEntry(t, fmt.Sprintf("key-%03d", i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	h := newHealer(t, a, antientropy.Config{}, b)
	h.RepairOnce(context.Background())

	if got, want := a.cache.Keys(), b.cache.Keys(); len(got) != len(want) {
		t.Fatalf("after repair: %d keys locally, peer has %d", len(got), len(want))
	}
	for _, k := range b.cache.Keys() {
		sa, oka := a.cache.Stat(k)
		sb, okb := b.cache.Stat(k)
		if !oka || !okb || sa != sb {
			t.Fatalf("digest mismatch for %q after repair: %+v vs %+v", k, sa, sb)
		}
	}
	if st := h.Stats(); st.RepairedMissing != 4 {
		t.Fatalf("RepairedMissing = %d, want 4", st.RepairedMissing)
	}
}

// TestDivergentConvergesToCanonicalBytes: when two replicas hold different
// bytes for one key, both repair directions settle on the lexicographically
// smaller encoding — whichever side runs repair first.
func TestDivergentConvergesToCanonicalBytes(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	ea, eb := mkEntry(t, "key-div", 4), mkEntry(t, "key-div", 8)
	if err := a.cache.Put(ea); err != nil {
		t.Fatal(err)
	}
	if err := b.cache.Put(eb); err != nil {
		t.Fatal(err)
	}
	da, err := plancache.EncodeEntry(ea)
	if err != nil {
		t.Fatal(err)
	}
	db, err := plancache.EncodeEntry(eb)
	if err != nil {
		t.Fatal(err)
	}
	canonical := da
	if bytes.Compare(db, da) < 0 {
		canonical = db
	}

	ha := newHealer(t, a, antientropy.Config{}, b)
	hb := newHealer(t, b, antientropy.Config{}, a)
	ha.RepairOnce(context.Background())
	hb.RepairOnce(context.Background())

	for name, c := range map[string]*plancache.Cache{"a": a.cache, "b": b.cache} {
		got, ok := c.Peek("key-div")
		if !ok {
			t.Fatalf("%s lost the key", name)
		}
		data, err := plancache.EncodeEntry(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, canonical) {
			t.Fatalf("%s holds non-canonical bytes after repair", name)
		}
	}
	if n := ha.Stats().RepairedDivergent + hb.Stats().RepairedDivergent; n != 1 {
		t.Fatalf("RepairedDivergent total = %d, want exactly 1 adoption", n)
	}
}

// TestWarmupStreamsOwnedKeys: a cold node pulls every owned key from its
// replicas before flipping ready; an expired deadline stops cleanly.
func TestWarmupStreamsOwnedKeys(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	for i := 0; i < 5; i++ {
		if err := b.cache.Put(mkEntry(t, fmt.Sprintf("warm-%03d", i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	h := newHealer(t, a, antientropy.Config{}, b)
	if n := h.Warmup(context.Background()); n != 5 {
		t.Fatalf("Warmup fetched %d, want 5", n)
	}
	if a.cache.Len() != 5 {
		t.Fatalf("cache has %d entries after warm-up", a.cache.Len())
	}
	if st := h.Stats(); st.WarmupFetched != 5 {
		t.Fatalf("WarmupFetched = %d", st.WarmupFetched)
	}

	// An already-expired deadline fetches nothing and does not hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cold := newPeer(t)
	hc := newHealer(t, cold, antientropy.Config{}, b)
	if n := hc.Warmup(ctx); n != 0 {
		t.Fatalf("expired warm-up fetched %d", n)
	}
}

// TestDrainPushHandsOffEntries: drain pushes local entries to replicas that
// lack them, skipping ones they already hold.
func TestDrainPushHandsOffEntries(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	shared := mkEntry(t, "key-shared", 4)
	sole := mkEntry(t, "key-sole", 8)
	for _, e := range []*plancache.Entry{shared, sole} {
		if err := a.cache.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.cache.Put(shared); err != nil {
		t.Fatal(err)
	}
	h := newHealer(t, a, antientropy.Config{}, b)
	h.DrainPush(context.Background())
	if _, ok := b.cache.Peek(sole.Key); !ok {
		t.Fatal("solely-held entry not pushed on drain")
	}
	if st := h.Stats(); st.Pushes != 1 {
		t.Fatalf("Pushes = %d, want 1 (shared key must be skipped)", st.Pushes)
	}
}

// TestDropNotOwnedHandsOffFirst: with Replicas=1, keys owned elsewhere are
// pushed to their owner and only then deleted locally; with the owner down
// the entry is retained (never destroy the last copy).
func TestDropNotOwnedHandsOffFirst(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	r, err := ring.New([]string{a.ts.URL, b.ts.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by b under Replicas=1.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("stray-%03d", i)
		if r.Owner(key) == b.ts.URL {
			break
		}
	}
	if err := a.cache.Put(mkEntry(t, key, 4)); err != nil {
		t.Fatal(err)
	}

	up := false
	h := newHealer(t, a, antientropy.Config{Replicas: 1, PeerUp: func(string) bool { return up }}, b)
	h.RepairOnce(context.Background())
	if _, ok := a.cache.Peek(key); !ok {
		t.Fatal("unowned entry dropped while its owner was down")
	}

	up = true
	h.RepairOnce(context.Background())
	if _, ok := b.cache.Peek(key); !ok {
		t.Fatal("unowned entry not handed to its owner")
	}
	if _, ok := a.cache.Peek(key); ok {
		t.Fatal("unowned entry retained after handoff")
	}
	if st := h.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d", st.Dropped)
	}
}

// TestScrubRepairsBitRot: the background scrubber finds a silently corrupted
// on-disk entry, quarantines it, and restores it from a replica.
func TestScrubRepairsBitRot(t *testing.T) {
	a, b := newPeer(t), newPeer(t)
	e := mkEntry(t, "key-rot", 4)
	for _, c := range []*plancache.Cache{a.cache, b.cache} {
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a payload byte behind the cache's back.
	path := filepath.Join(a.cache.Dir(), e.Key+plancache.Ext)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	h := newHealer(t, a, antientropy.Config{
		ScrubInterval:  2 * time.Millisecond,
		RepairInterval: time.Hour, // isolate the scrub path
	}, b)
	h.Start()
	defer h.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := h.Stats(); st.ScrubRepaired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired the entry: %+v", h.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, ok := a.cache.Peek(e.Key)
	if !ok {
		t.Fatal("entry missing after scrub repair")
	}
	want, err := plancache.EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := plancache.EncodeEntry(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotData, want) {
		t.Fatal("scrub repair restored different bytes")
	}
	if _, err := os.Stat(path + plancache.QuarantineSuffix); err != nil {
		t.Fatal("corrupt bytes not preserved in quarantine")
	}
}
