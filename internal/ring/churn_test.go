// Ring-churn ↔ anti-entropy agreement: the key sets a node must acquire and
// drop when the ring changes, computed directly from OwnedBy, must be exactly
// the Missing and NotOwned sets the repair loop's digest diff computes. If
// these ever disagree, repair either leaks entries forever or deletes owned
// ones. External test package because antientropy imports ring.
package ring_test

import (
	"fmt"
	"testing"

	"bootes/internal/antientropy"
	"bootes/internal/plancache"
	"bootes/internal/ring"
	"bootes/internal/sparse"
)

func TestRingChurnAgreement(t *testing.T) {
	const (
		nKeys    = 200
		replicas = 2
	)
	nodes3 := []string{"http://a", "http://b", "http://c"}
	nodes2 := []string{"http://a", "http://b"}
	r3, err := ring.New(nodes3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ring.New(nodes2, 0)
	if err != nil {
		t.Fatal(err)
	}

	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}

	// OwnedBy must agree with scanning Replicas, and every key must have
	// exactly `replicas` owners.
	for _, r := range []*ring.Ring{r3, r2} {
		for _, k := range keys {
			reps := r.Replicas(k, replicas)
			inReps := make(map[string]bool, len(reps))
			for _, n := range reps {
				inReps[n] = true
			}
			owners := 0
			for _, n := range r.Nodes() {
				if r.OwnedBy(k, n, replicas) != inReps[n] {
					t.Fatalf("OwnedBy(%q, %q) disagrees with Replicas %v", k, n, reps)
				}
				if inReps[n] {
					owners++
				}
			}
			if owners != replicas {
				t.Fatalf("key %q has %d owners", k, owners)
			}
		}
	}
	if r3.OwnedBy(keys[0], "http://ghost", replicas) {
		t.Fatal("non-member owns a key")
	}

	// ownedCache builds a cache holding exactly the keys node owns under r —
	// the steady state the repair loop converges each node to.
	ownedCache := func(r *ring.Ring, node string) *plancache.Cache {
		t.Helper()
		c, err := plancache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		perm := make(sparse.Permutation, 8)
		for i := range perm {
			perm[i] = int32(len(perm) - 1 - i)
		}
		for _, k := range keys {
			if r.OwnedBy(k, node, replicas) {
				if err := c.Put(&plancache.Entry{Key: k, Perm: perm, Reordered: true, K: 4}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c
	}

	// universe is a peer digest advertising every key, as a fully-caught-up
	// replica would during churn.
	full, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	{
		perm := make(sparse.Permutation, 8)
		for i := range perm {
			perm[i] = int32(len(perm) - 1 - i)
		}
		for _, k := range keys {
			if err := full.Put(&plancache.Entry{Key: k, Perm: perm, Reordered: true, K: 4}); err != nil {
				t.Fatal(err)
			}
		}
	}
	universe := antientropy.DigestOf(full, "")

	// churn runs one membership change for one node: the cache holds the
	// old-ring ownership, the diff runs against the new ring, and the
	// acquire/drop sets must match the direct OwnedBy delta.
	churn := func(node string, oldR, newR *ring.Ring) {
		t.Helper()
		c := ownedCache(oldR, node)
		owns := func(k string) bool { return newR.OwnedBy(k, node, replicas) }
		diff := antientropy.ComputeDiff(c, universe, owns)

		wantAcquire := map[string]bool{}
		wantDrop := map[string]bool{}
		for _, k := range keys {
			was := oldR.OwnedBy(k, node, replicas)
			is := newR.OwnedBy(k, node, replicas)
			if is && !was {
				wantAcquire[k] = true
			}
			if was && !is {
				wantDrop[k] = true
			}
		}
		if len(diff.Missing) != len(wantAcquire) {
			t.Fatalf("%s: diff.Missing has %d keys, ownership delta says %d",
				node, len(diff.Missing), len(wantAcquire))
		}
		for _, k := range diff.Missing {
			if !wantAcquire[k] {
				t.Fatalf("%s: diff would pull %q which ownership never moved", node, k)
			}
		}
		if len(diff.NotOwned) != len(wantDrop) {
			t.Fatalf("%s: diff.NotOwned has %d keys, ownership delta says %d",
				node, len(diff.NotOwned), len(wantDrop))
		}
		for _, k := range diff.NotOwned {
			if !wantDrop[k] {
				t.Fatalf("%s: diff would drop %q which the node still owns", node, k)
			}
		}
		if len(diff.Divergent) != 0 {
			t.Fatalf("%s: identical bytes reported divergent: %v", node, diff.Divergent)
		}
	}

	// Remove c, then add it back: surviving nodes absorb c's ranges, then
	// return them. Every node's repair plan must match the ownership delta in
	// both directions.
	for _, node := range nodes2 {
		churn(node, r3, r2)
		churn(node, r2, r3)
	}
	// The re-added node itself starts from its pre-removal cache: a no-op
	// churn must compute an empty repair plan.
	{
		c := ownedCache(r3, "http://c")
		diff := antientropy.ComputeDiff(c, universe, func(k string) bool {
			return r3.OwnedBy(k, "http://c", replicas)
		})
		if len(diff.Missing) != 0 || len(diff.NotOwned) != 0 {
			t.Fatalf("converged node computes non-empty repair: %+v", diff)
		}
	}
}
