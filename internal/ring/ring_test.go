package ring

import (
	"fmt"
	"testing"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func keyset(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Keys in production are hex SHA-256 MatrixKeys; synthetic keys are
		// re-hashed by the ring anyway, so plain strings exercise the same path.
		out[i] = fmt.Sprintf("matrix-key-%06d", i)
	}
	return out
}

// TestBalanceChiSquare bounds per-node load skew: with 8 nodes x 128 vnodes
// and 20k keys, the chi-square statistic over the node-load histogram must
// stay under a bound ~3x the empirically observed value — catching both a
// broken point distribution (orders of magnitude larger) and an accidental
// vnode-count regression, while never flaking (the statistic is
// deterministic: fixed nodes, fixed keys, unseeded hash).
func TestBalanceChiSquare(t *testing.T) {
	const nodes, keys = 8, 20000
	r, err := New(nodeNames(nodes), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int, nodes)
	for _, k := range keyset(keys) {
		counts[r.Owner(k)]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own any keys", len(counts), nodes)
	}
	expected := float64(keys) / nodes
	chi2 := 0.0
	minC, maxC := keys, 0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
		minC = min(minC, c)
		maxC = max(maxC, c)
	}
	t.Logf("chi2=%.1f min=%d max=%d expected=%.0f", chi2, minC, maxC, expected)
	// df=7; a uniform multinomial would sit near 7, consistent hashing's arc
	// variance inflates it. Observed ~130 with 128 vnodes; a real imbalance
	// (e.g. vnodes=1 scores >4000) blows far past the bound.
	if chi2 > 700 {
		t.Errorf("chi-square %.1f exceeds balance bound 700", chi2)
	}
	if ratio := float64(maxC) / float64(minC); ratio > 1.5 {
		t.Errorf("max/min node load ratio %.2f exceeds 1.5", ratio)
	}
}

// TestMinimalMovementOnJoin: adding a node moves only ~1/(N+1) of the keys,
// and every moved key moves TO the new node — no key shuffles between
// surviving nodes.
func TestMinimalMovementOnJoin(t *testing.T) {
	const keys = 10000
	before, err := New(nodeNames(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	joined := append(nodeNames(8), "http://10.0.0.99:8080")
	after, err := New(joined, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keyset(keys) {
		a, b := before.Owner(k), after.Owner(k)
		if a == b {
			continue
		}
		moved++
		if b != "http://10.0.0.99:8080" {
			t.Fatalf("key %s moved %s -> %s, not to the joining node", k, a, b)
		}
	}
	frac := float64(moved) / keys
	t.Logf("join moved %d/%d keys (%.1f%%, ideal %.1f%%)", moved, keys, 100*frac, 100.0/9)
	if frac < 0.05 || frac > 0.20 {
		t.Errorf("join moved %.1f%% of keys, want roughly 1/9 (5%%..20%%)", 100*frac)
	}
}

// TestMinimalMovementOnLeave: removing a node moves only that node's keys,
// each to a surviving node; every other assignment is untouched.
func TestMinimalMovementOnLeave(t *testing.T) {
	const keys = 10000
	all := nodeNames(8)
	gone := all[3]
	before, err := New(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(append(append([]string{}, all[:3]...), all[4:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keyset(keys) {
		a, b := before.Owner(k), after.Owner(k)
		if a != gone {
			if a != b {
				t.Fatalf("key %s on surviving node moved %s -> %s", k, a, b)
			}
			continue
		}
		moved++
		if b == gone {
			t.Fatalf("key %s still owned by the removed node", k)
		}
	}
	t.Logf("leave moved %d/%d keys (%.1f%%, ideal %.1f%%)", moved, keys, 100*float64(moved)/keys, 100.0/8)
}

// TestReplicaSetProperties: replicas are distinct, owner-first, stable under
// node-list permutation, and clamp to the fleet size.
func TestReplicaSetProperties(t *testing.T) {
	nodes := nodeNames(5)
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different insertion order: identical ring.
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	r2, err := New(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keyset(500) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %s: %d replicas, want 3", k, len(reps))
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("key %s: replica[0]=%s != owner %s", k, reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("key %s: duplicate replica %s", k, n)
			}
			seen[n] = true
		}
		if got := r2.Replicas(k, 3); got[0] != reps[0] || got[1] != reps[1] || got[2] != reps[2] {
			t.Fatalf("key %s: replica set differs across node orderings: %v vs %v", k, got, reps)
		}
		if full := r.Replicas(k, 99); len(full) != len(nodes) {
			t.Fatalf("key %s: over-asking returned %d replicas, want %d", k, len(full), len(nodes))
		}
	}
}

// TestDeterministicAcrossProcesses pins exact owner/replica assignments for a
// handful of keys. These constants were computed once and must never change:
// peers and clients in *different processes* (and different releases) route by
// agreeing on these values, so a drift here is a fleet-wide cache miss storm
// and a routing split-brain.
func TestDeterministicAcrossProcesses(t *testing.T) {
	r, err := New([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[string][]string{
		"k-alpha": pinAlpha,
		"k-beta":  pinBeta,
		"k-gamma": pinGamma,
	}
	for key, want := range pinned {
		got := r.Replicas(key, 2)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("Replicas(%q, 2) = %v, want %v (cross-process routing contract broken)", key, got, want)
		}
	}
}

// The pinned routing contract for TestDeterministicAcrossProcesses.
var (
	pinAlpha = []string{"http://a:1", "http://c:1"}
	pinBeta  = []string{"http://c:1", "http://b:1"}
	pinGamma = []string{"http://a:1", "http://b:1"}
)

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("New accepted an empty node list")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Error("New accepted an empty node name")
	}
	r, err := New([]string{"a", "a", "a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("duplicates not collapsed: Len=%d", r.Len())
	}
	if !r.Contains("a") || r.Contains("b") {
		t.Error("Contains is wrong")
	}
	if got := r.Owner("anything"); got != "a" {
		t.Errorf("single-node ring owner = %q", got)
	}
}
