// Package ring is a consistent-hash ring over the fleet's node names,
// sharding the content-addressed plan cache (SHA-256 MatrixKeys) across N
// bootesd peers.
//
// Properties the fleet layer depends on:
//
//   - Determinism across processes: point positions derive from SHA-256 of
//     (node name, virtual-node index) and key positions from SHA-256 of the
//     key, with no process-local seed — every node and every client computes
//     the same owner and the same replica set for a key, so routing needs no
//     coordination service.
//   - Balance: each node projects Vnodes virtual points onto a 64-bit
//     circle, smoothing per-node load to within a few percent of uniform
//     (ring_test.go bounds the chi-square statistic).
//   - Minimal movement: adding or removing a node only moves the keys whose
//     clockwise successor changed — about 1/N of the keyspace — which is the
//     property that makes rolling fleet resizes cheap (ring_test.go asserts
//     both directions).
//   - Replica sets: Replicas(key, n) walks clockwise collecting the first n
//     distinct nodes, so replicas are deterministic, owner-first, and a
//     node's failure promotes the next replica without recomputing anything.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per physical node. 128 keeps the
// worst-case per-node load within ~±10% of uniform for small fleets while the
// ring stays a few KB.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring. Build with New; membership
// changes build a new Ring (they are cheap and the fleet layer swaps the
// pointer atomically).
type Ring struct {
	nodes  []string // sorted, deduplicated
	vnodes int
	points []point // sorted by (hash, node index, vnode index)
}

// point is one virtual node's position on the circle.
type point struct {
	hash uint64
	node int32 // index into nodes
	vn   int32 // vnode index, tie-break only
}

// New builds a ring over the given node names with vnodes virtual points per
// node (<=0 uses DefaultVnodes). Names are deduplicated; at least one is
// required. Node order does not matter: two processes given the same set in
// any order build identical rings.
func New(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make(map[string]bool, len(nodes))
	var sorted []string
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("ring: empty node name")
		}
		if !uniq[n] {
			uniq[n] = true
			sorted = append(sorted, n)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	sort.Strings(sorted)
	r := &Ring{nodes: sorted, vnodes: vnodes}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for ni, name := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hash64(name + "#" + strconv.Itoa(v)),
				node: int32(ni),
				vn:   int32(v),
			})
		}
	}
	// Equal hashes are astronomically unlikely with SHA-256 but the sort must
	// still be a total order for cross-process determinism.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.vn < b.vn
	})
	return r, nil
}

// hash64 maps s onto the circle: the first 8 bytes of SHA-256(s), big-endian.
// SHA-256 rather than a seeded fast hash so every process agrees.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's member names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports ring membership.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node owning key: the first virtual point at or clockwise
// of the key's position.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.successor(key)].node]
}

// Replicas returns key's replica set: the first n distinct nodes walking
// clockwise from the key's position, owner first. n is clamped to the node
// count, so Replicas(key, len(nodes)) is a full preference order over the
// fleet.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// OwnedBy reports whether node is in key's replica set of size n — the
// ownership predicate the anti-entropy layer repairs toward. Equivalent to
// scanning Replicas(key, n) but allocation-free on the hot digest-diff path.
func (r *Ring) OwnedBy(key, node string, n int) bool {
	if !r.Contains(node) {
		return false
	}
	if n <= 0 {
		n = 1
	}
	if n >= len(r.nodes) {
		return true
	}
	seen := make(map[int32]bool, n)
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(seen) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if r.nodes[p.node] == node {
			return true
		}
	}
	return false
}

// successor finds the index of the first point with hash >= the key's hash,
// wrapping past the top of the circle.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
