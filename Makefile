# Development targets for the Bootes reproduction.
#
#   make check   — vet + build + full test suite (tier-1 gate)
#   make race    — race-detector pass over the root package and the internal
#                  packages (including the ctx-aware pool and the concurrent
#                  plan-cancellation stress test), with a multi-core scheduler
#   make fuzz    — short fuzzing smoke over the sparse-format parsers and the
#                  CSR constructor (the hostile-input hardening targets)
#   make bench   — the parallel-layer benchmarks behind BENCH_parallel.json
#   make report  — regenerate the reproduction report at the default scale

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz bench report

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# GOMAXPROCS is forced above 1 so the race pass schedules real concurrency
# even on single-core CI runners; the timeout covers the ~10-20x race-detector
# slowdown of the experiment drivers on such runners.
race:
	GOMAXPROCS=4 $(GO) test -race -timeout 45m . ./internal/...

# go accepts one -fuzz pattern per invocation, so each target gets its own.
fuzz:
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadMatrixMarket -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzNewCSR -fuzztime $(FUZZTIME)

bench:
	$(GO) test ./internal/sparse/ -run XXX -bench 'Similarity|SpMV' -benchtime 10x
	$(GO) test ./internal/cluster/ -run XXX -bench KMeans -benchtime 10x
	$(GO) test ./internal/core/ -run XXX -bench 'Eigensolve|Sweep' -benchtime 5x

report:
	$(GO) run ./cmd/benchsuite -scale 0.12 -jobs 4 -out report.txt
