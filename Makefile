# Development targets for the Bootes reproduction.
#
#   make check   — vet + build + full test suite (tier-1 gate)
#   make race    — race-detector pass over the root package and the internal
#                  packages (including the ctx-aware pool and the concurrent
#                  plan-cancellation stress test), with a multi-core scheduler
#   make race-serve — focused race pass over the serving layer: the plan
#                  cache's concurrent put/get paths and planserve's
#                  coalescing/admission/breaker storms
#   make fuzz    — short fuzzing smoke over the sparse-format parsers, the
#                  CSR constructor, and the plan-cache entry decoder (the
#                  hostile-input hardening targets)
#   make bench   — the parallel-layer benchmarks behind BENCH_parallel.json
#   make report  — regenerate the reproduction report at the default scale

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race race-serve fuzz bench report

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# GOMAXPROCS is forced above 1 so the race pass schedules real concurrency
# even on single-core CI runners; the timeout covers the ~10-20x race-detector
# slowdown of the experiment drivers on such runners.
race:
	GOMAXPROCS=4 $(GO) test -race -timeout 45m . ./internal/...

race-serve:
	GOMAXPROCS=4 $(GO) test -race -count=2 -timeout 10m \
		./internal/plancache/... ./internal/planserve/

# go accepts one -fuzz pattern per invocation, so each target gets its own.
fuzz:
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadMatrixMarket -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzNewCSR -fuzztime $(FUZZTIME)
	$(GO) test ./internal/plancache/ -run XXX -fuzz FuzzDecodeEntry -fuzztime $(FUZZTIME)

bench:
	$(GO) test ./internal/sparse/ -run XXX -bench 'Similarity|SpMV' -benchtime 10x
	$(GO) test ./internal/cluster/ -run XXX -bench KMeans -benchtime 10x
	$(GO) test ./internal/core/ -run XXX -bench 'Eigensolve|Sweep' -benchtime 5x

report:
	$(GO) run ./cmd/benchsuite -scale 0.12 -jobs 4 -out report.txt
