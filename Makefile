# Development targets for the Bootes reproduction.
#
#   make check   — vet + build + full test suite + fuzz seed corpus + the
#                  short deterministic chaos run + the observability coverage
#                  gate (tier-1 gate)
#   make cover   — per-package statement coverage report; enforces a floor on
#                  internal/obs (metrics must stay tested), report-only
#                  everywhere else
#   make race    — race-detector pass over the root package and the internal
#                  packages (including the ctx-aware pool and the concurrent
#                  plan-cancellation stress test), with a multi-core scheduler
#   make race-serve — focused race pass over the serving layer: the plan
#                  cache's concurrent put/get paths, planserve's
#                  coalescing/admission/breaker storms, the durable async
#                  queue's worker/crash paths, the metrics registry's
#                  concurrent instrument updates, the consistent-hash ring,
#                  and the fleet router's forward/hedge/probe paths
#   make fuzz    — short fuzzing smoke over the sparse-format parsers, the
#                  CSR constructor, and the plan-cache entry decoder (the
#                  hostile-input hardening targets)
#   make chaos   — the long chaos soak: CHAOS_EPISODES (default 2000) seeded
#                  end-to-end episodes through plan→cache→serve→queue with
#                  faults armed (including queue-crash, tenant-storm, and
#                  fleet-partition), asserting the global invariants after
#                  each, plus the dense QUEUE_EPISODES (default 2000)
#                  queue-crash-only soak, the FLEET_EPISODES (default 200)
#                  fleet-partition kill/restart soak, and the HEAL_EPISODES
#                  (default 200) self-healing kill/restart/converge soak
#   make soak    — cmd/loadgen against a spawned 3-node in-process fleet:
#                  SOAK_DURATION of SOAK_QPS traffic, then latency/shed SLOs
#                  asserted from the fleet's own /metrics
#   make bench-queue — the durable-queue benchmark behind BENCH_queue.json
#                  (enqueue/drain throughput, journal replay at 10k jobs)
#   make bench   — the parallel-layer benchmarks behind BENCH_parallel.json
#   make bench-matrix — the similarity/eigen/k-means/sweep benchmarks across
#                  BOOTES_WORKERS ∈ {1,2,4,max} plus the end-to-end
#                  similarity-tier run that regenerates BENCH_fastpath.json
#   make report  — regenerate the reproduction report at the default scale

GO ?= go
FUZZTIME ?= 10s
CHAOS_EPISODES ?= 2000
CHAOS_SEED ?= 20250806
QUEUE_EPISODES ?= 2000
FLEET_EPISODES ?= 200
HEAL_EPISODES ?= 200
SOAK_DURATION ?= 30s
SOAK_QPS ?= 100

OBS_COVER_FLOOR ?= 60.0

.PHONY: check vet build test cover race race-serve fuzz fuzz-seeds chaos chaos-short soak bench bench-matrix bench-queue report

check: vet build test fuzz-seeds chaos-short cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Statement coverage. internal/obs is gated: the observability layer is what
# the rest of the system relies on for truth during incidents, so letting its
# tests rot defeats the point. Other packages are report-only.
cover:
	$(GO) test -coverprofile=cover.out ./internal/... ./cmd/... .
	$(GO) tool cover -func=cover.out | tail -n 1
	@total=$$($(GO) test -cover ./internal/obs/ | \
		sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	echo "internal/obs coverage: $$total% (floor $(OBS_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$total >= $(OBS_COVER_FLOOR))}" || \
		{ echo "FAIL: internal/obs coverage $$total% below floor $(OBS_COVER_FLOOR)%"; exit 1; }

# GOMAXPROCS is forced above 1 so the race pass schedules real concurrency
# even on single-core CI runners; the timeout covers the ~10-20x race-detector
# slowdown of the experiment drivers on such runners.
race:
	GOMAXPROCS=4 $(GO) test -race -timeout 45m . ./internal/...

race-serve:
	GOMAXPROCS=4 $(GO) test -race -count=2 -timeout 10m \
		./internal/plancache/... ./internal/planserve/ ./internal/planqueue/ ./internal/obs/ \
		./internal/ring/ ./internal/fleet/ ./internal/antientropy/ ./internal/refine/

# Seed-corpus-only pass: every fuzz target replays its checked-in corpus as
# plain tests (no mutation engine), so check catches corpus regressions fast.
fuzz-seeds:
	$(GO) test ./internal/sparse/ ./internal/plancache/ ./internal/refine/ -run 'Fuzz' -count=1

# Short deterministic chaos run (also part of `go test ./...`); kept as its
# own target so check's output names it explicitly.
chaos-short:
	$(GO) test ./internal/chaos/ -run TestChaosEpisodes -count=1

# The long soak: the mixed schedule (which includes the queue-crash and
# tenant-storm scenarios) plus the dense queue-crash-only crash/restart soak.
# Reproduce a red run with: make chaos CHAOS_SEED=<seed>.
chaos:
	$(GO) test ./internal/chaos/ -run 'TestChaosEpisodes|TestQueueCrashSoak|TestFleetPartitionSoak|TestFleetHealSoak' -count=1 -v -timeout 60m \
		-chaos.episodes=$(CHAOS_EPISODES) -chaos.seed=$(CHAOS_SEED) \
		-chaos.queue-episodes=$(QUEUE_EPISODES) -chaos.fleet-episodes=$(FLEET_EPISODES) \
		-chaos.heal-episodes=$(HEAL_EPISODES)

# Fleet soak: spawn a 3-node in-process fleet, drive it at SOAK_QPS for
# SOAK_DURATION, and fail on a latency/shed SLO breach measured from the
# fleet's own /metrics. Point it at a real fleet with: go run ./cmd/loadgen
# -peers http://a:8080,http://b:8080 ...
soak:
	$(GO) run ./cmd/loadgen -spawn 3 -duration $(SOAK_DURATION) -qps $(SOAK_QPS) -misroute

# go accepts one -fuzz pattern per invocation, so each target gets its own.
fuzz:
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadMatrixMarket -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzNewCSR -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sparse/ -run XXX -fuzz FuzzBitsetPack -fuzztime $(FUZZTIME)
	$(GO) test ./internal/plancache/ -run XXX -fuzz FuzzDecodeEntry -fuzztime $(FUZZTIME)
	$(GO) test ./internal/refine/ -run XXX -fuzz FuzzRefine -fuzztime $(FUZZTIME)

bench:
	$(GO) test ./internal/sparse/ -run XXX -bench 'Similarity|SpMV' -benchtime 10x
	$(GO) test ./internal/cluster/ -run XXX -bench KMeans -benchtime 10x
	$(GO) test ./internal/core/ -run XXX -bench 'Eigensolve|Sweep' -benchtime 5x

# Fast-path benchmark matrix: the similarity/eigensolver/k-means/sweep
# micro-benchmarks at each worker count (empty BOOTES_WORKERS = host max),
# then the end-to-end per-tier run behind BENCH_fastpath.json. Rerun after
# touching the similarity kernels, the LSH sparsifier, or the tier selector.
BENCH_MATRIX_WORKERS ?= 1 2 4 max
bench-matrix:
	for w in $(BENCH_MATRIX_WORKERS); do \
		if [ "$$w" = max ]; then unset BOOTES_WORKERS; else BOOTES_WORKERS=$$w; export BOOTES_WORKERS; fi; \
		echo "=== BOOTES_WORKERS=$${BOOTES_WORKERS:-max}"; \
		$(GO) test ./internal/sparse/ -run XXX -bench 'Similarity|SpMV' -benchtime 10x || exit 1; \
		$(GO) test ./internal/cluster/ -run XXX -bench KMeans -benchtime 10x || exit 1; \
		$(GO) test ./internal/core/ -run XXX -bench 'Eigensolve|Sweep' -benchtime 5x || exit 1; \
	done
	$(GO) run ./cmd/benchfast -rows 20000 -nnz 48 -workers 1,2,4,0 -seed 7 -reps 3 -out BENCH_fastpath.json

# Queue benchmark: fsync-acked enqueue throughput, cold journal replay at
# 10k jobs, and worker-pool drain throughput. Rerun after touching the
# journal, spool, or WFQ scheduler.
bench-queue:
	$(GO) run ./cmd/benchqueue -jobs 10000 -out BENCH_queue.json

report:
	$(GO) run ./cmd/benchsuite -scale 0.12 -jobs 4 -out report.txt
