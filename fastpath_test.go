package bootes

import (
	"testing"

	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

// TestPlanKeyDistinguishesSimilarityClass: exact and bitset produce
// bit-identical plans and must share a cache key; approximate and implicit
// plans can differ and must key separately.
func TestPlanKeyDistinguishesSimilarityClass(t *testing.T) {
	cache, err := OpenPlanCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := smallMatrix(t, 7)
	base := Options{Seed: 1, ForceReorder: true, ForceK: 4, Cache: cache}
	if _, err := Plan(m, &base); err != nil {
		t.Fatal(err)
	}

	// Same class (exact): the bitset kernel computes the same S, so the key
	// must collide on purpose and hit.
	bitset := base
	bitset.Similarity = SimBitset
	p, err := Plan(m, &bitset)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromCache {
		t.Error("bitset (exact-class) plan missed the exact plan's cache entry")
	}
	if p.SimilarityMode != "bitset" {
		t.Errorf("cache hit reports tier %q, want bitset", p.SimilarityMode)
	}

	// Different classes: must miss.
	for name, mode := range map[string]SimilarityMode{
		"approx":   SimApprox,
		"implicit": SimImplicit,
	} {
		o := base
		o.Similarity = mode
		p, err := Plan(m, &o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.FromCache {
			t.Errorf("%s-class plan wrongly hit the exact plan's cache entry", name)
		}
		if p.SimilarityMode != name {
			t.Errorf("%s plan reports tier %q", name, p.SimilarityMode)
		}
	}
}

// TestApproxPlansValidWithCloseTraffic: on the corpus archetypes the
// LSH-sparsified tier must produce plans that pass the always-on verifier
// (valid bijections) and whose predicted B traffic is within 5% of the
// exact tier's plan.
func TestApproxPlansValidWithCloseTraffic(t *testing.T) {
	const cacheBytes = 32 << 10
	for _, tc := range []struct {
		name string
		arch workloads.Archetype
	}{
		{"scrambled-block", workloads.ArchScrambledBlock},
		{"knn", workloads.ArchKNN},
		{"power-law", workloads.ArchPowerLaw},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := workloads.Generate(tc.arch, workloads.Params{
				Rows: 1024, Cols: 1024, Density: 0.01, Seed: 9, Groups: 8,
			})
			exact, err := Plan(m, &Options{Seed: 3, ForceReorder: true, ForceK: 8, Similarity: SimExact})
			if err != nil {
				t.Fatal(err)
			}
			approx, err := Plan(m, &Options{Seed: 3, ForceReorder: true, ForceK: 8, Similarity: SimApprox})
			if err != nil {
				t.Fatal(err)
			}
			if approx.SimilarityMode != "approx" {
				t.Fatalf("approx plan ran tier %q", approx.SimilarityMode)
			}
			if err := approx.Perm.Validate(m.Rows); err != nil {
				t.Fatalf("approx plan permutation invalid: %v", err)
			}
			if approx.Degraded {
				t.Fatalf("approx plan degraded: %s", approx.DegradedReason)
			}

			// Self-product traffic: C = A·Aᵀ reuses rows of A as B.
			et, err := trafficmodel.EstimateBWithPerm(m, m, exact.Perm, cacheBytes, 12)
			if err != nil {
				t.Fatal(err)
			}
			at, err := trafficmodel.EstimateBWithPerm(m, m, approx.Perm, cacheBytes, 12)
			if err != nil {
				t.Fatal(err)
			}
			if et.BTraffic == 0 {
				t.Fatal("exact plan predicts zero traffic")
			}
			ratio := float64(at.BTraffic) / float64(et.BTraffic)
			t.Logf("B traffic: exact=%d approx=%d ratio=%.4f", et.BTraffic, at.BTraffic, ratio)
			if ratio > 1.05 {
				t.Errorf("approx plan predicts %.1f%% more traffic than exact (cap 5%%)",
					(ratio-1)*100)
			}
		})
	}
}
