package bootes

import (
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/planverify"
	"bootes/internal/workloads"
)

// verifyMatrix is small enough that arming faults per-subtest stays cheap but
// structured enough that the gate reorders it.
func verifyMatrix(t *testing.T) *Matrix {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 256, Cols: 256, Density: 0.04, Seed: 17, Groups: 4,
	})
}

// TestVerifyCatchesInjectedCorruptionAtPlan is the acceptance check for the
// first wiring site: with the PlanCorrupt point armed, the verifier inside
// PlanContext must catch the corrupted permutation, fall back to a marked
// identity plan, and record the violation under the planning site.
func TestVerifyCatchesInjectedCorruptionAtPlan(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := verifyMatrix(t)
	before := planverify.BySite()[planverify.SitePlan]
	if err := faultinject.Arm(faultinject.PlanCorrupt, faultinject.Times(1)); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(m, &Options{ForceReorder: true, ForceK: 8, Seed: 3})
	if err != nil {
		t.Fatalf("corruption must degrade, not error: %v", err)
	}
	if !plan.Degraded || !strings.Contains(plan.DegradedReason, "plan verification failed") {
		t.Fatalf("corrupt plan served: Degraded=%v reason=%q", plan.Degraded, plan.DegradedReason)
	}
	if plan.Reordered || plan.K != 0 {
		t.Fatalf("fallback is not identity: Reordered=%v K=%d", plan.Reordered, plan.K)
	}
	if err := plan.Perm.Validate(m.Rows); err != nil {
		t.Fatalf("fallback permutation invalid: %v", err)
	}
	for i, v := range plan.Perm {
		if v != int32(i) {
			t.Fatalf("fallback perm not identity at %d", i)
		}
	}
	if got := planverify.BySite()[planverify.SitePlan]; got <= before {
		t.Fatal("violation not recorded under the planning site")
	}

	// The fault was Times(1) and is now spent: the same call comes back clean.
	clean, err := Plan(m, &Options{ForceReorder: true, ForceK: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded || !clean.Reordered {
		t.Fatalf("healthy replan after the fault: Degraded=%v Reordered=%v", clean.Degraded, clean.Reordered)
	}
}

// TestVerifyCorruptPlanNeverCached: with corruption injected and a cache
// attached, the degraded fallback must not be persisted — on any of the
// verification paths (the plan site and the cache-put site both fire).
func TestVerifyCorruptPlanNeverCached(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := verifyMatrix(t)
	cache, err := OpenPlanCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.PlanCorrupt, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(m, &Options{ForceReorder: true, ForceK: 8, Seed: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Degraded {
		t.Fatal("corrupt plan served as healthy")
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("degraded fallback reached the cache: %+v", st)
	}
}

// TestVerifyOffSkipsChecks: the escape hatch. With VerifyOff the armed
// corruption point is never consulted on the plan path, so the plan comes
// back healthy and no violation is recorded — the knob genuinely gates the
// verifier rather than merely suppressing its fallback.
func TestVerifyOffSkipsChecks(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := verifyMatrix(t)
	planverify.ResetCounters()
	if err := faultinject.Arm(faultinject.PlanCorrupt, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(m, &Options{ForceReorder: true, ForceK: 8, Seed: 3, Verify: VerifyOff})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degraded {
		t.Fatalf("VerifyOff plan degraded: %s", plan.DegradedReason)
	}
	if got := planverify.BySite()[planverify.SitePlan]; got != 0 {
		t.Fatalf("VerifyOff still recorded %d plan-site violations", got)
	}
}

// TestVerifyTrafficRegressionFallsBack: the never-regress invariant. A banded
// matrix is already in its best order; forcing the traffic check against a
// gate-approved-looking reordering must be impossible here (Force* disables
// the check), so instead drive VerifyResult's wiring indirectly: a default
// Plan on a banded matrix must simply not reorder — and whatever the gate
// decides, the returned plan must carry no traffic regression.
func TestVerifyTrafficRegressionFallsBack(t *testing.T) {
	m := workloads.Banded(workloads.Params{Rows: 512, Cols: 512, Density: 0.01, Seed: 9})
	plan, err := Plan(m, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reordered {
		// The gate approved a reordering on a banded matrix; the verifier's
		// traffic check must then have proven it does not regress.
		if v := planverify.CheckTraffic(m, plan.Perm, nil); v != nil {
			t.Fatalf("served plan regresses traffic: %v", v)
		}
	}
}
