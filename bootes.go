// Package bootes is a Go reproduction of "Bootes: Boosting the Efficiency of
// Sparse Accelerators Using Spectral Clustering" (Yadav & Asgari, MICRO'25).
//
// Bootes is a preprocessing stage for row-wise-product (Gustavson) SpGEMM
// accelerators: it reorders the rows of the input matrix A with spectral
// clustering so that rows with similar column supports become adjacent,
// maximizing the reuse of B's rows in the accelerator's cache and cutting
// off-chip memory traffic. A decision-tree cost model predicts, per matrix,
// whether reordering will pay off at all and which cluster count k to use.
//
// # Quick start
//
//	m, _ := bootes.ReadMatrixMarket(r)           // or build a Matrix directly
//	plan, _ := bootes.Plan(m, nil)               // gate + k selection + clustering
//	if plan.Reordered {
//	    pm, _ := plan.Apply(m)                   // permuted copy of A
//	    ... run SpGEMM with pm, then plan.Restore(c) on the output ...
//	}
//
// The packages under internal/ implement every subsystem from scratch:
// sparse kernels (internal/sparse), a thick-restart Lanczos eigensolver
// (internal/eigen), k-means (internal/cluster), the three baseline
// reorderers from the paper (internal/reorder), a CART decision tree
// (internal/dtree), a cache-accurate accelerator model (internal/accel), and
// the full experiment harness that regenerates the paper's tables and
// figures (internal/experiments, driven by cmd/benchsuite).
package bootes

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/dtree"
	"bootes/internal/plancache"
	"bootes/internal/planverify"
	"bootes/internal/refine"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

// Matrix is a sparse matrix in CSR format. It aliases the internal
// representation; construct one with NewMatrix, FromCOO or ReadMatrixMarket.
type Matrix = sparse.CSR

// Permutation maps new row position to original row (perm[new] = old).
type Permutation = sparse.Permutation

// NewMatrix builds a validated CSR matrix. val may be nil for a
// pattern-only matrix (sufficient for all reordering operations).
func NewMatrix(rows, cols int, rowPtr []int64, col []int32, val []float64) (*Matrix, error) {
	return sparse.NewCSR(rows, cols, rowPtr, col, val)
}

// FromCOO builds a matrix from coordinate triples; duplicates are summed.
func FromCOO(rows, cols int, i, j []int32, v []float64) (*Matrix, error) {
	if len(i) != len(j) || (v != nil && len(v) != len(i)) {
		return nil, errors.New("bootes: mismatched COO slice lengths")
	}
	coo := sparse.NewCOO(rows, cols, v == nil)
	for k := range i {
		val := 1.0
		if v != nil {
			val = v[k]
		}
		coo.Add(int(i[k]), int(j[k]), val)
	}
	return coo.ToCSR()
}

// ReadMatrixMarket parses a Matrix Market (coordinate) stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes m in Matrix Market coordinate form.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// ReadBinary parses a matrix in the library's compact binary (BCSR) format,
// ~10× faster to load than Matrix Market for large matrices.
func ReadBinary(r io.Reader) (*Matrix, error) { return sparse.ReadBinary(r) }

// WriteBinary writes m in the compact binary (BCSR) format.
func WriteBinary(w io.Writer, m *Matrix) error { return sparse.WriteBinary(w, m) }

// Options configures the Bootes pipeline.
type Options struct {
	// Model is a trained decision-tree gate (see TrainModel / LoadModel).
	// nil uses a structural heuristic instead.
	Model *Model
	// ForceReorder bypasses the gate and always reorders.
	ForceReorder bool
	// ForceK fixes the cluster count (must be one of CandidateKs) instead of
	// letting the gate choose. 0 lets the model/heuristic decide.
	ForceK int
	// AutoK enables eigengap-based automatic cluster-count selection: when
	// the gate approves reordering, the planner refines the explicit
	// similarity matrix (see Refinement), solves its top spectrum, and picks
	// k at the largest eigengap ratio within [2, 64] instead of the fixed
	// candidate set. An ambiguous spectrum falls back to the gate's fixed k
	// (recorded in ReorderPlan.AutoK, not a degradation); a failed attempt
	// degrades to the fixed-k ladder. Ignored when ForceK is set. Auto-k
	// plans cache under a distinct key.
	AutoK bool
	// Refinement overrides the affinity-refinement pipeline auto-k runs over
	// the similarity matrix. nil selects DefaultRefinement(). Ignored unless
	// AutoK is set.
	Refinement *RefinementOptions
	// ImplicitSimilarity avoids materializing S = Ā·Āᵀ (lower peak memory,
	// one extra matvec per Lanczos step). Legacy flag: equivalent to
	// Similarity = SimImplicit; ignored when Similarity is set explicitly.
	ImplicitSimilarity bool
	// Similarity selects how the similarity matrix S = Ā·Āᵀ is built: the
	// exact merge kernel, the packed-bitset exact kernel, the LSH-sparsified
	// approximation, or the matrix-free implicit operator. The zero value
	// SimAuto picks a tier from the matrix size and modeled similarity bytes
	// (see EffectiveSimilarityMode). Exact and bitset produce bit-identical
	// plans; approximate plans are still valid bijections but may differ,
	// so they cache under a distinct key.
	Similarity SimilarityMode
	// Seed makes the pipeline deterministic (Lanczos start vectors, k-means
	// seeding, feature sampling).
	Seed int64
	// Budget caps planning resources. The zero value imposes no limits.
	// Exceeding a cap never fails the plan: the pipeline degrades (cheaper
	// operator, smaller k, ultimately the identity permutation) and records
	// the trail in ReorderPlan.Degraded / DegradedReason.
	Budget Budget
	// Cache, when non-nil, is consulted before planning and durably stores
	// healthy (non-degraded) plans afterwards. The key covers the matrix's
	// sparsity structure and every option that shapes the plan, so a hit is
	// exactly the plan this call would have computed. Cache write failures
	// never fail the plan.
	Cache *PlanCache
	// Verify selects whether every plan is machine-checked before it is
	// returned or cached (internal/planverify): the permutation must be a
	// bijection of the right length, K must be a feasible cluster count
	// (a candidate count or an auto-k selection within [2, rows]),
	// Degraded must carry a reason, and — unless ForceReorder/ForceK bypassed
	// the gate — the traffic model must not predict the reordering moves more
	// bytes than the original order. A violating plan never surfaces: it
	// falls back to the identity permutation with the violation recorded in
	// DegradedReason. The zero value is VerifyOn.
	Verify VerifyMode
}

// SimilarityMode selects the similarity construction tier. See the constants
// below and Options.Similarity.
type SimilarityMode = core.SimilarityMode

// The similarity construction tiers, cheapest-guarantees last.
const (
	// SimAuto (the zero value) selects a tier automatically from the matrix
	// size and the modeled similarity bytes.
	SimAuto = core.SimAuto
	// SimExact materializes S with the merge-based SpGEMM kernel.
	SimExact = core.SimExact
	// SimBitset materializes S with packed row-support bitsets and
	// word-AND+popcount intersection — bit-identical to SimExact, faster on
	// matrices with clustered supports.
	SimBitset = core.SimBitset
	// SimApprox sparsifies S to LSH candidate pairs (MinHash banding) before
	// materializing: stored entries keep their exact intersection counts, but
	// dissimilar row pairs are dropped, shrinking the eigensolve.
	SimApprox = core.SimApprox
	// SimImplicit applies S as a matrix-free operator (lowest memory, one
	// extra matvec per Lanczos step).
	SimImplicit = core.SimImplicit
)

// ParseSimilarityMode maps a flag string ("auto", "exact", "bitset",
// "approx", "implicit"; "" means auto) to its SimilarityMode.
func ParseSimilarityMode(s string) (SimilarityMode, error) {
	return core.ParseSimilarityMode(s)
}

// EffectiveSimilarityMode reports the tier PlanContext would actually run
// for m under o (never SimAuto) — useful for tooling that wants to display
// or log the decision without planning.
func EffectiveSimilarityMode(m *Matrix, o *Options) SimilarityMode {
	var opts Options
	if o != nil {
		opts = *o
	}
	return core.EffectiveSimilarityMode(m, opts.spectralOptions())
}

// RefinementOptions configures the affinity-refinement pipeline auto-k runs
// over the similarity matrix before eigengap selection (see internal/refine):
// crop-diagonal, per-row p-percentile thresholding, symmetrization, diffusion
// S·Sᵀ, and row-max renormalization, applied in that fixed order.
type RefinementOptions = refine.Options

// DefaultRefinement returns the production refinement recipe: the full
// pipeline with 95th-percentile thresholding.
func DefaultRefinement() RefinementOptions { return refine.Default() }

// VerifyMode toggles the always-on plan verifier.
type VerifyMode int

// Verifier modes. VerifyOn is the zero value: plans are checked unless the
// caller explicitly opts out.
const (
	VerifyOn VerifyMode = iota
	VerifyOff
)

// Budget caps the resources one Plan/PlanContext call may consume.
type Budget struct {
	// MaxWallClock bounds planning wall time. On expiry the pipeline returns
	// an identity plan marked Degraded rather than an error; cancelling the
	// PlanContext context is still reported as ctx.Err().
	MaxWallClock time.Duration
	// MaxFootprintBytes bounds the modeled peak planning memory. Candidate
	// configurations whose upper-bound estimate exceeds it are skipped
	// before any similarity storage is allocated.
	MaxFootprintBytes int64
}

// CandidateKs are the cluster counts the pipeline chooses between.
func CandidateKs() []int { return append([]int(nil), core.CandidateKs...) }

// ReorderPlan is the outcome of planning: the permutation (identity when the
// gate declined) plus diagnostics.
type ReorderPlan struct {
	// Perm maps new row position to original row.
	Perm Permutation
	// Reordered is false when the cost model predicted no benefit.
	Reordered bool
	// K is the cluster count used (0 when not reordered).
	K int
	// PreprocessSeconds is the host-side planning time.
	PreprocessSeconds float64
	// FootprintBytes is the modeled peak preprocessing memory.
	FootprintBytes int64
	// Degraded reports that planning could not run its preferred
	// configuration and fell down the degradation ladder (lower-memory
	// operator, retried eigensolve, fixed small k, or identity). The plan is
	// still valid. DegradedReason records the trail.
	Degraded bool
	// DegradedReason is empty when Degraded is false.
	DegradedReason string
	// SimilarityMode names the similarity tier the spectral pass ran
	// ("exact", "bitset", "approx", "implicit"). Empty when no spectral pass
	// ran (gate decline, identity fallback).
	SimilarityMode string
	// AutoK records the eigengap auto-k outcome when Options.AutoK was set:
	// "selected: k=… gap-ratio=…" when the eigengap chose the cluster count,
	// "fallback-ambiguous: …" / "fallback-implicit: …" when selection
	// declined and the gate's fixed k was used (not a degradation),
	// "degraded" when the attempt failed and planning fell to the fixed-k
	// ladder, and "cached" on a cache hit (the outcome itself is not
	// persisted). Empty when auto-k was not requested.
	AutoK string
	// FromCache reports that the plan was served from Options.Cache;
	// PreprocessSeconds and FootprintBytes then describe the original
	// computation (what the hit saved), not this call.
	FromCache bool
}

// spectralOptions maps the public options to the core spectral
// configuration. planKey and PlanContext share it so the cache key and the
// executed pipeline can never disagree about an option.
func (o *Options) spectralOptions() core.SpectralOptions {
	return core.SpectralOptions{
		Seed:               o.Seed,
		ImplicitSimilarity: o.ImplicitSimilarity,
		Similarity:         o.Similarity,
	}
}

// autoKOptions maps the public auto-k options to the core configuration.
// planKey and PlanContext share it (via refinementOptions) so the cache key
// and the executed pipeline can never disagree about the refinement recipe.
func (o *Options) autoKOptions() core.AutoKOptions {
	if !o.AutoK {
		return core.AutoKOptions{}
	}
	return core.AutoKOptions{Enabled: true, Refine: o.refinementOptions()}
}

// refinementOptions resolves the effective refinement configuration.
func (o *Options) refinementOptions() RefinementOptions {
	if o.Refinement != nil {
		return *o.Refinement
	}
	return DefaultRefinement()
}

// Plan runs the Bootes pipeline on m: extract features, consult the gate,
// and spectrally cluster if advised. opts may be nil for defaults. Plan is
// PlanContext with a background context.
func Plan(m *Matrix, opts *Options) (*ReorderPlan, error) {
	return PlanContext(context.Background(), m, opts)
}

// PlanContext is Plan with cooperative cancellation: the context is threaded
// through every phase (similarity construction, each Lanczos iteration, each
// k-means restart and iteration, every parallel chunk launch), so cancelling
// it makes planning return ctx.Err() promptly. A context that is already done
// returns before any similarity storage is allocated. Budgets and internal
// faults never surface as errors — they degrade the plan instead (see
// Options.Budget and ReorderPlan.Degraded).
func PlanContext(ctx context.Context, m *Matrix, opts *Options) (*ReorderPlan, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	var key string
	if o.Cache != nil {
		key = planKey(m, &o)
		if e, ok := o.Cache.c.Get(key); ok {
			// A hit is re-checked before it is trusted: a corrupt or degraded
			// entry (disk rot beyond the CRC, a foreign writer) is treated as
			// a miss and recomputed, never served.
			hitSound := true
			if o.Verify == VerifyOn {
				vs := planverify.CheckEntryFields(e.Perm, e.K, e.Reordered, e.Degraded, e.DegradedReason)
				if len(e.Perm) != m.Rows {
					vs = append(vs, planverify.Violation{Code: planverify.CodePermInvalid,
						Detail: fmt.Sprintf("entry for %d rows, matrix has %d", len(e.Perm), m.Rows)})
				}
				if len(vs) > 0 {
					planverify.Record(planverify.SitePlanHit, vs...)
					hitSound = false
				}
			}
			if hitSound {
				// K > 0 ⇔ a spectral pass produced the entry, so the tier it
				// ran is exactly what this call's options resolve to (the key
				// covers every option that changes the tier class).
				simMode := ""
				if e.K > 0 {
					simMode = core.EffectiveSimilarityMode(m, o.spectralOptions()).String()
				}
				autoK := ""
				if o.AutoK {
					// The key covers the auto-k request and refinement recipe,
					// so the entry was planned with auto-k; the per-attempt
					// outcome string itself is not persisted.
					autoK = "cached"
				}
				return &ReorderPlan{
					Perm:              e.Perm,
					Reordered:         e.Reordered,
					K:                 e.K,
					PreprocessSeconds: e.PreprocessSeconds,
					FootprintBytes:    e.FootprintBytes,
					Degraded:          e.Degraded,
					DegradedReason:    e.DegradedReason,
					SimilarityMode:    simMode,
					AutoK:             autoK,
					FromCache:         true,
				}, nil
			}
		}
	}
	p := &core.Pipeline{
		Spectral:     o.spectralOptions(),
		ForceReorder: o.ForceReorder,
		ForceK:       o.ForceK,
		AutoK:        o.autoKOptions(),
		Budget: core.Budget{
			MaxWallClock:      o.Budget.MaxWallClock,
			MaxFootprintBytes: o.Budget.MaxFootprintBytes,
		},
	}
	if o.Model != nil {
		p.Model = o.Model.tree
	}
	res, err := p.ReorderContext(ctx, m)
	if err != nil {
		return nil, err
	}
	if o.Verify == VerifyOn {
		// Always-on verification: structural invariants on every plan, plus
		// the never-regress traffic check on gate-approved reorderings. The
		// Force* options are explicit caller overrides of the gate (ablation
		// and labelling paths), so only the structural checks apply to them.
		res, _ = planverify.VerifyResult(planverify.SitePlan, m, res, &planverify.Config{
			Traffic: !o.ForceReorder && o.ForceK == 0,
		})
	}
	plan := &ReorderPlan{
		Perm:              res.Perm,
		Reordered:         res.Reordered,
		K:                 int(res.Extra["k"]),
		PreprocessSeconds: res.PreprocessTime.Seconds(),
		FootprintBytes:    res.FootprintBytes,
		Degraded:          res.Degraded,
		DegradedReason:    res.DegradedReason,
		SimilarityMode:    res.SimilarityMode,
		AutoK:             res.AutoK,
	}
	if o.Cache != nil && !plan.Degraded {
		// Degraded plans reflect the moment's faults, not the matrix; only
		// healthy plans are worth replaying. A failed write is a lost
		// amortization opportunity, never a planning failure.
		_ = o.Cache.c.Put(&plancache.Entry{
			Key:               key,
			Perm:              plan.Perm,
			Reordered:         plan.Reordered,
			K:                 plan.K,
			PreprocessSeconds: plan.PreprocessSeconds,
			FootprintBytes:    plan.FootprintBytes,
		})
	}
	return plan, nil
}

// PlanCache is a crash-safe persistent plan cache (see internal/plancache):
// entries are content-addressed, atomically written and checksummed, and
// corrupt files are quarantined rather than failing the open. Attach one via
// Options.Cache to amortize planning across processes and restarts.
type PlanCache struct{ c *plancache.Cache }

// OpenPlanCache loads (or creates) a plan cache directory. A directory
// damaged by crashes or bit rot still opens: unreadable entries are set
// aside, never fatal.
func OpenPlanCache(dir string) (*PlanCache, error) {
	c, err := plancache.Open(dir)
	if err != nil {
		return nil, err
	}
	return &PlanCache{c: c}, nil
}

// PlanCacheStats counts cache activity since OpenPlanCache.
type PlanCacheStats = plancache.Stats

// Stats returns the cache's counters.
func (c *PlanCache) Stats() PlanCacheStats { return c.c.Stats() }

// Len returns the number of loadable entries.
func (c *PlanCache) Len() int { return c.c.Len() }

// MatrixKey returns the content hash of m's sparsity structure — the
// identity under which plans are cached and coalesced (values are excluded;
// planning consumes only the pattern).
func MatrixKey(m *Matrix) string { return plancache.KeyCSR(m) }

// planKey extends the matrix's structural hash with every option that
// changes the planned permutation, so one cache directory can serve callers
// with different seeds, forced configurations, or models without collisions.
// Budget is deliberately excluded: it only influences degraded plans, which
// are never cached. Verify is likewise excluded: verification never alters a
// healthy plan, and only healthy plans are cached.
//
// The similarity tier is keyed by its *class* (exact / approximate /
// implicit), resolved against this matrix: exact and bitset produce
// bit-identical plans and deliberately share a key, while an approximate or
// implicit request — whether explicit or auto-selected by size — keys
// separately because the permutation can legitimately differ. Keys for
// exact-class plans are unchanged from earlier releases.
func planKey(m *Matrix, o *Options) string {
	h := sha256.New()
	h.Write([]byte(plancache.KeyCSR(m)))
	var opt [32]byte
	binary.LittleEndian.PutUint64(opt[0:], uint64(o.Seed))
	binary.LittleEndian.PutUint64(opt[8:], uint64(o.ForceK))
	if o.ForceReorder {
		opt[16] = 1
	}
	switch core.EffectiveSimilarityMode(m, o.spectralOptions()).Class() {
	case core.SimClassImplicit:
		opt[17] = 1
	case core.SimClassApprox:
		opt[18] = 1
	}
	// Auto-k keys separately from fixed-k planning, and each refinement
	// recipe keys separately too: the selected k (and thus the permutation)
	// depends on every op and on the threshold percentile.
	if o.AutoK {
		opt[19] = 1
		r := o.refinementOptions()
		var flags byte
		if r.CropDiagonal {
			flags |= 1 << 0
		}
		if r.ThresholdP > 0 {
			flags |= 1 << 1
		}
		if r.Symmetrize {
			flags |= 1 << 2
		}
		if r.Diffuse {
			flags |= 1 << 3
		}
		if r.RowMaxNorm {
			flags |= 1 << 4
		}
		opt[20] = flags
		binary.LittleEndian.PutUint64(opt[24:], math.Float64bits(r.ThresholdP))
	}
	h.Write(opt[:])
	if o.Model != nil {
		if enc, err := o.Model.Encode(); err == nil {
			h.Write(enc)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Apply returns a copy of m with rows in the plan's order.
func (p *ReorderPlan) Apply(m *Matrix) (*Matrix, error) {
	return sparse.PermuteRows(m, p.Perm)
}

// Restore undoes the plan's row reordering on a matrix whose rows are in the
// reordered frame — typically the SpGEMM output C, whose row order follows
// A's (the paper's post-processing step).
func (p *ReorderPlan) Restore(m *Matrix) (*Matrix, error) {
	return sparse.UnpermuteRows(m, p.Perm)
}

// ApplySymmetric returns P·m·Pᵀ for a square matrix: rows and columns are
// relabelled together. Use it for self-product workloads (C = A·Aᵀ with
// both operands reordered, graph adjacency analyses) where the row and
// column spaces are the same entity.
func (p *ReorderPlan) ApplySymmetric(m *Matrix) (*Matrix, error) {
	return sparse.PermuteSymmetric(m, p.Perm)
}

// Model is a trained decision-tree gate.
type Model struct{ tree *dtree.Tree }

// LoadModel parses a model serialized by Model.Encode.
func LoadModel(data []byte) (*Model, error) {
	t, err := dtree.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Model{tree: t}, nil
}

// Encode serializes the model to JSON (~a few KB).
func (m *Model) Encode() ([]byte, error) { return m.tree.Encode() }

// SizeBytes returns the serialized model size.
func (m *Model) SizeBytes() int64 { return m.tree.ModeledBytes() }

// Baseline identifies one of the paper's comparison reorderers.
type Baseline int

// The comparison reorderers evaluated by the paper.
const (
	// BaselineOriginal performs no reordering.
	BaselineOriginal Baseline = iota
	// BaselineGamma is GAMMA's windowed greedy algorithm (Alg. 1).
	BaselineGamma
	// BaselineGraph is the FSpGEMM similarity-graph greedy walk (Alg. 2).
	BaselineGraph
	// BaselineHier is LSH-seeded hierarchical clustering (Alg. 3).
	BaselineHier
)

// ReorderBaseline runs one of the paper's baseline algorithms on m.
func ReorderBaseline(m *Matrix, b Baseline, seed int64) (*ReorderPlan, error) {
	var r reorder.Reorderer
	switch b {
	case BaselineOriginal:
		r = reorder.Original{}
	case BaselineGamma:
		r = reorder.Gamma{Seed: seed}
	case BaselineGraph:
		r = reorder.Graph{Seed: seed}
	case BaselineHier:
		r = reorder.Hier{}
	default:
		return nil, fmt.Errorf("bootes: unknown baseline %d", b)
	}
	res, err := r.Reorder(m)
	if err != nil {
		return nil, err
	}
	return &ReorderPlan{
		Perm:              res.Perm,
		Reordered:         res.Reordered,
		PreprocessSeconds: res.PreprocessTime.Seconds(),
		FootprintBytes:    res.FootprintBytes,
	}, nil
}

// Accelerator identifies a simulated accelerator target.
type Accelerator int

// The paper's three target accelerators.
const (
	// Flexagon has a 1 MB shared cache and 67 PEs.
	Flexagon Accelerator = iota
	// GAMMA has a 3 MB shared cache and 64 PEs.
	GAMMA
	// Trapezoid has a 4 MB shared cache and 128 PEs.
	Trapezoid
)

func (a Accelerator) config() (accel.Config, error) {
	switch a {
	case Flexagon:
		return accel.Flexagon, nil
	case GAMMA:
		return accel.GAMMA, nil
	case Trapezoid:
		return accel.Trapezoid, nil
	default:
		return accel.Config{}, fmt.Errorf("bootes: unknown accelerator %d", a)
	}
}

// String names the accelerator.
func (a Accelerator) String() string {
	cfg, err := a.config()
	if err != nil {
		return "Unknown"
	}
	return cfg.Name
}

// TrafficReport is the off-chip traffic of one simulated SpGEMM.
type TrafficReport struct {
	// ABytes/BBytes/CBytes split traffic by operand.
	ABytes, BBytes, CBytes int64
	// CompulsoryBytes is the unbounded-cache lower bound.
	CompulsoryBytes int64
	// Flops counts multiply-accumulates; OutputNNZ is nnz(C).
	Flops, OutputNNZ int64
	// Cycles is the roofline execution estimate; Seconds converts it at the
	// accelerator's clock.
	Cycles  int64
	Seconds float64
}

// TotalBytes returns the summed off-chip traffic.
func (t TrafficReport) TotalBytes() int64 { return t.ABytes + t.BBytes + t.CBytes }

// Simulate runs C = A·B with the row-wise-product dataflow on the given
// accelerator model and reports off-chip traffic and a cycle estimate.
func Simulate(a Accelerator, ma, mb *Matrix) (*TrafficReport, error) {
	cfg, err := a.config()
	if err != nil {
		return nil, err
	}
	res, err := accel.SimulateRowWise(cfg, ma, mb)
	if err != nil {
		return nil, err
	}
	return &TrafficReport{
		ABytes:          res.Traffic.ABytes,
		BBytes:          res.Traffic.BBytes,
		CBytes:          res.Traffic.CBytes,
		CompulsoryBytes: res.Compulsory.Total(),
		Flops:           res.Flops,
		OutputNNZ:       res.OutputNNZ,
		Cycles:          res.Cycles,
		Seconds:         res.Seconds(),
	}, nil
}

// SpGEMM computes C = A·B with Gustavson's row-wise product on the host
// (numeric, not simulated). Pattern inputs are treated as all-ones.
func SpGEMM(a, b *Matrix) (*Matrix, error) { return sparse.SpGEMM(a, b) }
