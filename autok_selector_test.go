package bootes

// Acceptance test for the eigengap auto-k selector: over the SC archetype
// corpus (every pre-existing archetype plus the three added for auto-k),
// auto-k must predict strictly less B traffic than the best fixed-k sweep on
// at least two of the three new archetypes, and must never regress a
// pre-existing archetype by more than 2%. The experiment scores the real
// production policy — a fallback outcome defers to the sweep — so smooth-
// spectrum archetypes tie by construction and the criteria pin the selector's
// behaviour on matrices with genuine cluster structure. EXPERIMENTS.md
// records the per-archetype deltas from cmd/benchsuite -only SC.

import (
	"testing"

	"bootes/internal/experiments"
)

func TestAutoKSelectorComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("selector comparison runs the full archetype corpus")
	}
	rep, err := experiments.SelectorComparison(experiments.Config{Scale: 0.12, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	wins, total := rep.NewArchetypeWins()
	if total != 3 {
		t.Fatalf("expected 3 new archetypes in the corpus, got %d", total)
	}
	if wins < 2 {
		for _, r := range rep.Records {
			if r.New {
				t.Logf("%s: fixed %.4f (k=%d) vs auto %.4f [%s]",
					r.Archetype, r.FixedRatio, r.BestFixedK, r.AutoRatio, r.Outcome)
			}
		}
		t.Errorf("auto-k strictly better on %d/3 new archetypes, want >= 2", wins)
	}
	if worst := rep.WorstExistingRegressionPct(); worst > 2.0 {
		for _, r := range rep.Records {
			if !r.New && r.DeltaPct() < 0 {
				t.Logf("%s: fixed %.4f (k=%d) vs auto %.4f [%s]",
					r.Archetype, r.FixedRatio, r.BestFixedK, r.AutoRatio, r.Outcome)
			}
		}
		t.Errorf("worst existing-archetype regression %.2f%%, want <= 2%%", worst)
	}
	// Every record carries a coherent outcome: a selected k implies a
	// recorded k and a scored ratio; a fallback scores the sweep's ratio.
	for _, r := range rep.Records {
		if r.AutoK > 0 && r.AutoRatio <= 0 {
			t.Errorf("%s: selected k=%d but no auto ratio", r.Archetype, r.AutoK)
		}
		if r.AutoK == 0 && r.AutoRatio != r.FixedRatio {
			t.Errorf("%s: fallback should score the sweep ratio", r.Archetype)
		}
	}
}
