package bootes

import (
	"testing"

	"bootes/internal/workloads"
)

func smallMatrix(t *testing.T, seed int64) *Matrix {
	t.Helper()
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 96, Cols: 96, Density: 0.05, Seed: seed, Groups: 4,
	})
}

// TestOptionsCacheRoundTrip: the second identical Plan call is served from
// the persistent cache with an identical permutation, and the cache survives
// a reopen (fresh process).
func TestOptionsCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenPlanCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := smallMatrix(t, 7)
	opts := &Options{Seed: 1, ForceReorder: true, ForceK: 4, Cache: cache}

	p1, err := Plan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.FromCache {
		t.Fatal("first plan claims to be cached")
	}
	if p1.Degraded {
		t.Fatalf("healthy input degraded: %s", p1.DegradedReason)
	}
	p2, err := Plan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.FromCache {
		t.Fatal("second identical plan not served from cache")
	}
	if len(p1.Perm) != len(p2.Perm) {
		t.Fatal("cached plan has different shape")
	}
	for i := range p1.Perm {
		if p1.Perm[i] != p2.Perm[i] {
			t.Fatalf("cached permutation diverges at %d", i)
		}
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 put", st)
	}

	// A fresh open (a new process) still serves the plan.
	reopened, err := OpenPlanCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened cache holds %d entries, want 1", reopened.Len())
	}
	opts.Cache = reopened
	p3, err := Plan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.FromCache {
		t.Fatal("plan not served from reopened cache")
	}
}

// TestPlanKeyCoversOptions: options that change the planned permutation must
// miss rather than collide, while a pure value change on the same pattern
// must hit.
func TestPlanKeyCoversOptions(t *testing.T) {
	cache, err := OpenPlanCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := smallMatrix(t, 7)
	base := Options{Seed: 1, ForceReorder: true, ForceK: 4, Cache: cache}
	if _, err := Plan(m, &base); err != nil {
		t.Fatal(err)
	}

	for name, o := range map[string]Options{
		"seed":     {Seed: 2, ForceReorder: true, ForceK: 4, Cache: cache},
		"forceK":   {Seed: 1, ForceReorder: true, ForceK: 8, Cache: cache},
		"implicit": {Seed: 1, ForceReorder: true, ForceK: 4, ImplicitSimilarity: true, Cache: cache},
	} {
		p, err := Plan(m, &o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.FromCache {
			t.Errorf("option change %q wrongly hit the cache", name)
		}
	}

	// Same structure, different values: planning only consumes the pattern,
	// so this is the same plan and must hit.
	shifted := m.Clone()
	for i := range shifted.Val {
		shifted.Val[i] *= 3.5
	}
	if MatrixKey(shifted) != MatrixKey(m) {
		t.Fatal("MatrixKey depends on values")
	}
	p, err := Plan(shifted, &base)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromCache {
		t.Error("value-only change missed the cache")
	}
}
