package bootes

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs the corresponding experiment driver at a reduced scale and attaches
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result (see EXPERIMENTS.md for the paper-vs-measured
// index; cmd/benchsuite renders the full report at larger scales).

import (
	"testing"

	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/eigen"
	"bootes/internal/experiments"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/trafficmodel"
	"bootes/internal/workloads"
)

// benchConfig is the shared reduced-scale experiment configuration.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.05, Seed: 1}
}

// BenchmarkTable1Dataflows measures inner vs outer vs row-wise product
// traffic (paper Table 1). Metric: row-wise total traffic normalized to
// compulsory, and its advantage over the inner product.
func BenchmarkTable1Dataflows(b *testing.B) {
	cfg := benchConfig()
	cfg.SuiteIDs = []string{"VI", "SM"}
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, r := range last.Rows {
		switch r.Dataflow {
		case accel.RowWiseProduct:
			b.ReportMetric(r.NormTotal, "rowwise-norm-traffic")
		case accel.InnerProduct:
			b.ReportMetric(r.NormTotal, "inner-norm-traffic")
		case accel.OuterProduct:
			b.ReportMetric(r.NormTotal, "outer-norm-traffic")
		}
	}
}

// BenchmarkTable2Scaling fits the empirical preprocessing-time scaling
// exponents (paper Table 2). Metrics: size exponents per algorithm
// (Bootes ≈ 1, Gamma/Graph ≈ 2).
func BenchmarkTable2Scaling(b *testing.B) {
	cfg := benchConfig()
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, r := range last.Rows {
		switch r.Algorithm {
		case "Bootes":
			b.ReportMetric(r.SizeExponent, "bootes-size-exp")
		case "Gamma":
			b.ReportMetric(r.SizeExponent, "gamma-size-exp")
		case "Graph":
			b.ReportMetric(r.SizeExponent, "graph-size-exp")
		}
	}
}

// BenchmarkFigure3ClusterSize sweeps the candidate cluster counts on one
// matrix via the shared-embedding sweep (paper Figure 3's bars). Metric:
// best-k B-traffic ratio vs original order.
func BenchmarkFigure3ClusterSize(b *testing.B) {
	spec, _ := workloads.ByID("IN")
	a := spec.Generate(0.05)
	best := 1.0
	for i := 0; i < b.N; i++ {
		entries, err := core.SpectralSweep(a, core.CandidateKs, core.SpectralOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		best = 1.0
		for _, e := range entries {
			est, err := trafficmodel.EstimateBWithPerm(a, a, e.Perm, 50<<10, 12)
			if err != nil {
				b.Fatal(err)
			}
			base, err := trafficmodel.EstimateB(a, a, 50<<10, 12)
			if err != nil {
				b.Fatal(err)
			}
			if r := float64(est.BTraffic) / float64(base.BTraffic); r < best {
				best = r
			}
		}
	}
	b.ReportMetric(best, "best-k-traffic-ratio")
}

// BenchmarkFigure4Traffic runs the adaptability study (paper Figure 4) on a
// representative suite subset. Metric: geomean traffic reduction of Bootes
// vs no reordering on the smallest-cache accelerator.
func BenchmarkFigure4Traffic(b *testing.B) {
	cfg := benchConfig()
	cfg.SuiteIDs = []string{"IN", "MI", "SM"}
	var last *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Reduction["Flexagon"]["Original"], "flexagon-vs-original")
	b.ReportMetric(last.Reduction["GAMMA"]["Original"], "gamma-vs-original")
	b.ReportMetric(last.Reduction["Trapezoid"]["Original"], "trapezoid-vs-original")
}

// BenchmarkFigure5Scalability measures preprocessing time and footprint
// over the size/density sweep (paper Figure 5). Metrics: Bootes' geomean
// time speedup and memory reduction vs Gamma.
func BenchmarkFigure5Scalability(b *testing.B) {
	cfg := benchConfig()
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TimeSpeedup["Gamma"], "time-speedup-vs-gamma")
	b.ReportMetric(last.MemReduction["Gamma"], "mem-reduction-vs-gamma")
	b.ReportMetric(last.TimeSpeedup["Hier"], "time-speedup-vs-hier")
}

// BenchmarkFigure6EndToEnd runs the end-to-end (preprocess + compute)
// comparison (paper Figure 6). Metric: Bootes' preprocessing-time advantage
// over Gamma and Hier (the paper's §5.4 ratios).
func BenchmarkFigure6EndToEnd(b *testing.B) {
	cfg := benchConfig()
	cfg.SuiteIDs = []string{"IN", "SM"}
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PreprocessRatio["Gamma"], "preproc-ratio-gamma")
	b.ReportMetric(last.PreprocessRatio["Hier"], "preproc-ratio-hier")
}

// BenchmarkTable4Speedup derives the per-accelerator geomean execution
// speedups over no preprocessing (paper Table 4) from the Figure 6 runs.
func BenchmarkTable4Speedup(b *testing.B) {
	cfg := benchConfig()
	cfg.SuiteIDs = []string{"IN", "MI"}
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, acc := range []string{"Flexagon", "GAMMA", "Trapezoid"} {
		b.ReportMetric(last.Table4[acc]["Bootes"], acc+"-bootes-speedup")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func ablationMatrix() *sparse.CSR {
	return workloads.ScrambledBlock(workloads.Params{
		Rows: 3000, Cols: 3000, Density: 0.006, Seed: 17, Groups: 24,
	})
}

// BenchmarkAblationExplicitSimilarity: paper Algorithm 4 materializes
// S = Ā·Āᵀ before the eigensolve.
func BenchmarkAblationExplicitSimilarity(b *testing.B) {
	a := ablationMatrix()
	var foot int64
	for i := 0; i < b.N; i++ {
		res, err := core.Spectral{Opts: core.SpectralOptions{K: 16, Seed: 1}}.Reorder(a)
		if err != nil {
			b.Fatal(err)
		}
		foot = res.FootprintBytes
	}
	b.ReportMetric(float64(foot), "modeled-footprint-bytes")
}

// BenchmarkAblationImplicitSimilarity: the operator form trades one extra
// matvec per Lanczos step for a much smaller peak footprint.
func BenchmarkAblationImplicitSimilarity(b *testing.B) {
	a := ablationMatrix()
	var foot int64
	for i := 0; i < b.N; i++ {
		res, err := core.Spectral{Opts: core.SpectralOptions{K: 16, Seed: 1, ImplicitSimilarity: true}}.Reorder(a)
		if err != nil {
			b.Fatal(err)
		}
		foot = res.FootprintBytes
	}
	b.ReportMetric(float64(foot), "modeled-footprint-bytes")
}

// BenchmarkAblationHubExclusion compares similarity construction with and
// without the hub-column cap that keeps S sparse.
func BenchmarkAblationHubExclusion(b *testing.B) {
	a := ablationMatrix()
	b.Run("capped", func(b *testing.B) {
		var nnz int64
		for i := 0; i < b.N; i++ {
			s := sparse.SimilarityCapped(a, sparse.HubDegreeThreshold(a))
			nnz = s.NNZ()
		}
		b.ReportMetric(float64(nnz), "sim-nnz")
	})
	b.Run("uncapped", func(b *testing.B) {
		var nnz int64
		for i := 0; i < b.N; i++ {
			s := sparse.Similarity(a)
			nnz = s.NNZ()
		}
		b.ReportMetric(float64(nnz), "sim-nnz")
	})
}

// BenchmarkAblationClusterOrder compares the Fiedler-sorted cluster layout
// against plain cluster-id order (traffic quality metric).
func BenchmarkAblationClusterOrder(b *testing.B) {
	a := ablationMatrix()
	for _, tc := range []struct {
		name  string
		order int
	}{{"fiedler", 0}, {"clusterID", 1}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			ratio := 0.0
			for i := 0; i < b.N; i++ {
				opts := core.SpectralOptions{K: 16, Seed: 1}
				if tc.order == 1 {
					opts.Order = 1 // cluster.OrderClusterID
				}
				res, err := core.Spectral{Opts: opts}.Reorder(a)
				if err != nil {
					b.Fatal(err)
				}
				base, err := trafficmodel.EstimateB(a, a, 64<<10, 12)
				if err != nil {
					b.Fatal(err)
				}
				est, err := trafficmodel.EstimateBWithPerm(a, a, res.Perm, 64<<10, 12)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(est.BTraffic) / float64(base.BTraffic)
			}
			b.ReportMetric(ratio, "traffic-ratio")
		})
	}
}

// BenchmarkAblationGammaWindow sweeps GAMMA's window size W, the structural
// constraint the paper's §2.2.1 analysis criticizes.
func BenchmarkAblationGammaWindow(b *testing.B) {
	a := ablationMatrix()
	for _, w := range []int{16, 128, 1024} {
		w := w
		b.Run(benchName("W", w), func(b *testing.B) {
			ratio := 0.0
			for i := 0; i < b.N; i++ {
				res, err := reorder.Gamma{W: w, Seed: 1}.Reorder(a)
				if err != nil {
					b.Fatal(err)
				}
				base, err := trafficmodel.EstimateB(a, a, 64<<10, 12)
				if err != nil {
					b.Fatal(err)
				}
				est, err := trafficmodel.EstimateBWithPerm(a, a, res.Perm, 64<<10, 12)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(est.BTraffic) / float64(base.BTraffic)
			}
			b.ReportMetric(ratio, "traffic-ratio")
		})
	}
}

// BenchmarkAblationLanczosBasis sweeps the Krylov basis bound: larger bases
// converge in fewer restarts but cost more per step and more memory.
func BenchmarkAblationLanczosBasis(b *testing.B) {
	a := ablationMatrix()
	s := sparse.SimilarityCapped(a, sparse.HubDegreeThreshold(a))
	op := eigen.NewNormalizedSimilarity(s)
	for _, basis := range []int{40, 80, 160} {
		basis := basis
		b.Run(benchName("m", basis), func(b *testing.B) {
			matvecs := 0
			for i := 0; i < b.N; i++ {
				res, err := eigen.Largest(op, eigen.Options{K: 16, Seed: 1, Tol: 1e-5, MaxBasis: basis})
				if err != nil {
					b.Fatal(err)
				}
				matvecs = res.MatVecs
			}
			b.ReportMetric(float64(matvecs), "matvecs")
		})
	}
}

// --- Kernel micro-benchmarks ---

func BenchmarkKernelSpGEMM(b *testing.B) {
	a := ablationMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.SpGEMM(a, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSimilarity(b *testing.B) {
	a := ablationMatrix()
	thr := sparse.HubDegreeThreshold(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.SimilarityCapped(a, thr)
	}
}

func BenchmarkKernelTranspose(b *testing.B) {
	a := ablationMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.Transpose(a)
	}
}

func BenchmarkKernelCacheSim(b *testing.B) {
	a := ablationMatrix()
	cfg := accel.Config{Name: "bench", PEs: 16, CacheBytes: 64 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := accel.SimulateRowWise(cfg, a, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorderGamma(b *testing.B) {
	a := ablationMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (reorder.Gamma{Seed: 1}).Reorder(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorderGraph(b *testing.B) {
	a := ablationMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (reorder.Graph{Seed: 1}).Reorder(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorderHier(b *testing.B) {
	a := ablationMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (reorder.Hier{}).Reorder(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorderBootes(b *testing.B) {
	a := ablationMatrix()
	p := &core.Pipeline{ForceReorder: true, ForceK: 16, Spectral: core.SpectralOptions{Seed: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Reorder(a); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	// Small helper to avoid importing strconv at every call site.
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationRecursive compares flat spectral clustering against the
// recursive extension when the hidden group count exceeds the largest
// candidate k.
func BenchmarkAblationRecursive(b *testing.B) {
	a := workloads.ScrambledBlock(workloads.Params{
		Rows: 4096, Cols: 4096, Density: 0.004, Seed: 5, Groups: 64,
	})
	const cache = 24 << 10
	base, err := trafficmodel.EstimateB(a, a, cache, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flat-k8", func(b *testing.B) {
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			res, err := core.Spectral{Opts: core.SpectralOptions{K: 8, Seed: 1}}.Reorder(a)
			if err != nil {
				b.Fatal(err)
			}
			est, err := trafficmodel.EstimateBWithPerm(a, a, res.Perm, cache, 12)
			if err != nil {
				b.Fatal(err)
			}
			ratio = float64(est.BTraffic) / float64(base.BTraffic)
		}
		b.ReportMetric(ratio, "traffic-ratio")
	})
	b.Run("recursive-k8", func(b *testing.B) {
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			res, err := core.Recursive{K: 8, MaxClusterRows: 96, Opts: core.SpectralOptions{Seed: 1}}.Reorder(a)
			if err != nil {
				b.Fatal(err)
			}
			est, err := trafficmodel.EstimateBWithPerm(a, a, res.Perm, cache, 12)
			if err != nil {
				b.Fatal(err)
			}
			ratio = float64(est.BTraffic) / float64(base.BTraffic)
		}
		b.ReportMetric(ratio, "traffic-ratio")
	})
}

// BenchmarkAblationReorthogonalization compares full reorthogonalization
// against the classic three-term recurrence in the Lanczos eigensolver.
func BenchmarkAblationReorthogonalization(b *testing.B) {
	a := ablationMatrix()
	s := sparse.SimilarityCapped(a, sparse.HubDegreeThreshold(a))
	op := eigen.NewNormalizedSimilarity(s)
	for _, tc := range []struct {
		name  string
		local bool
	}{{"full", false}, {"three-term", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			matvecs := 0
			for i := 0; i < b.N; i++ {
				res, err := eigen.Largest(op, eigen.Options{
					K: 16, Seed: 1, Tol: 1e-5, MaxBasis: 64, LocalReorth: tc.local,
				})
				if err != nil {
					b.Fatal(err)
				}
				matvecs = res.MatVecs
			}
			b.ReportMetric(float64(matvecs), "matvecs")
		})
	}
}

// BenchmarkAblationTwoLevelCache compares the flat shared cache against a
// GAMMA-style hierarchy with small per-PE buffers.
func BenchmarkAblationTwoLevelCache(b *testing.B) {
	a := ablationMatrix()
	for _, tc := range []struct {
		name    string
		private int64
	}{{"shared-only", 0}, {"with-pe-buffers", 2 << 10}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var traffic int64
			for i := 0; i < b.N; i++ {
				res, err := accel.SimulateRowWise(accel.Config{
					Name: "bench", PEs: 16, CacheBytes: 64 << 10, PEPrivateCacheBytes: tc.private,
				}, a, a)
				if err != nil {
					b.Fatal(err)
				}
				traffic = res.Traffic.BBytes
			}
			b.ReportMetric(float64(traffic), "b-traffic-bytes")
		})
	}
}

// BenchmarkAblationKSelection compares three ways of choosing the cluster
// count on a matrix with 24 hidden groups: the heuristic gate, the eigengap
// spectrum heuristic, and the best of a full sweep (oracle).
func BenchmarkAblationKSelection(b *testing.B) {
	a := ablationMatrix()
	const cache = 64 << 10
	base, err := trafficmodel.EstimateB(a, a, cache, 12)
	if err != nil {
		b.Fatal(err)
	}
	ratioFor := func(k int) float64 {
		res, err := core.Spectral{Opts: core.SpectralOptions{K: k, Seed: 1}}.Reorder(a)
		if err != nil {
			b.Fatal(err)
		}
		est, err := trafficmodel.EstimateBWithPerm(a, a, res.Perm, cache, 12)
		if err != nil {
			b.Fatal(err)
		}
		return float64(est.BTraffic) / float64(base.BTraffic)
	}
	b.Run("eigengap", func(b *testing.B) {
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			k, _, err := core.SelectKByEigengap(a, core.SpectralOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			ratio = ratioFor(k)
		}
		b.ReportMetric(ratio, "traffic-ratio")
	})
	b.Run("oracle-sweep", func(b *testing.B) {
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			entries, err := core.SpectralSweep(a, core.CandidateKs, core.SpectralOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			best := 1.0
			for _, e := range entries {
				est, err := trafficmodel.EstimateBWithPerm(a, a, e.Perm, cache, 12)
				if err != nil {
					b.Fatal(err)
				}
				if r := float64(est.BTraffic) / float64(base.BTraffic); r < best {
					best = r
				}
			}
			ratio = best
		}
		b.ReportMetric(ratio, "traffic-ratio")
	})
}
