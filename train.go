package bootes

import (
	"io"

	"bootes/internal/experiments"
)

// TrainStats summarizes a TrainModel run.
type TrainStats struct {
	// CorpusSize is the number of labelled matrices (70/30 train/test).
	CorpusSize int
	// TestAccuracy is exact-class accuracy on the held-out set.
	TestAccuracy float64
	// GateAccuracy scores the binary reorder/no-reorder decision.
	GateAccuracy float64
	// TolerantAccuracy counts predictions whose traffic lands within 5% of
	// the best action's.
	TolerantAccuracy float64
	// ModelBytes is the serialized model size.
	ModelBytes int64
}

// TrainModel generates the synthetic labelled corpus (every structural
// archetype × sizes × densities), labels each matrix by sweeping cluster
// counts under the traffic model, and trains the decision-tree gate — the
// reproduction of the paper's §3.2/§5.1 training flow. scale (0, 1] sizes
// the corpus (0.12 trains in a few minutes); progress may be nil.
func TrainModel(scale float64, seed int64, progress io.Writer) (*Model, *TrainStats, error) {
	cfg := experiments.Config{Scale: scale, Seed: seed}
	if progress != nil {
		cfg.Out = progress
	}
	rep, _, err := cfg.TrainModel()
	if err != nil {
		return nil, nil, err
	}
	return &Model{tree: rep.Model}, &TrainStats{
		CorpusSize:       rep.TrainSize + rep.TestSize,
		TestAccuracy:     rep.TestAccuracy,
		GateAccuracy:     rep.GateAccuracy,
		TolerantAccuracy: rep.TolerantAccuracy,
		ModelBytes:       rep.ModelBytes,
	}, nil
}
