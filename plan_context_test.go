package bootes

import (
	"context"
	"errors"
	"testing"
	"time"

	"bootes/internal/faultinject"
)

func TestPlanContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan, err := PlanContext(ctx, demoMatrix(t), &Options{ForceReorder: true, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlanContext = (%v, %v), want context.Canceled", plan, err)
	}
}

func TestPlanContextMatchesPlan(t *testing.T) {
	m := demoMatrix(t)
	opts := &Options{ForceReorder: true, ForceK: 8, Seed: 5}
	p1, err := Plan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanContext(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Degraded || p2.Degraded {
		t.Fatalf("healthy plans must not be Degraded (%v, %v)", p1.Degraded, p2.Degraded)
	}
	if p1.K != p2.K || len(p1.Perm) != len(p2.Perm) {
		t.Fatal("Plan and PlanContext disagree on shape")
	}
	for i := range p1.Perm {
		if p1.Perm[i] != p2.Perm[i] {
			t.Fatalf("permutations diverge at %d", i)
		}
	}
}

func TestPlanDegradesUnderInjectedFaults(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always())
	faultinject.Arm(faultinject.AllocCapBreach, faultinject.Always())
	m := demoMatrix(t)
	plan, err := Plan(m, &Options{ForceReorder: true, ForceK: 8, Seed: 5})
	if err != nil {
		t.Fatalf("plan errored instead of degrading: %v", err)
	}
	if !plan.Degraded || plan.DegradedReason == "" {
		t.Fatalf("want a degraded plan with a reason, got Degraded=%v reason=%q",
			plan.Degraded, plan.DegradedReason)
	}
	if err := plan.Perm.Validate(m.Rows); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
	// A degraded plan is still fully usable.
	pm, err := plan.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Rows != m.Rows {
		t.Fatal("applied plan changed the matrix shape")
	}
}

func TestPlanBudgetDegradesToIdentity(t *testing.T) {
	m := demoMatrix(t)
	plan, err := Plan(m, &Options{
		ForceReorder: true, ForceK: 8, Seed: 5,
		Budget: Budget{MaxFootprintBytes: 128},
	})
	if err != nil {
		t.Fatalf("budget breach must degrade, not error: %v", err)
	}
	if !plan.Degraded || plan.Reordered {
		t.Fatalf("tiny memory budget: want degraded identity, got Degraded=%v Reordered=%v",
			plan.Degraded, plan.Reordered)
	}
}

func TestPlanWallClockBudget(t *testing.T) {
	m := demoMatrix(t)
	plan, err := Plan(m, &Options{
		ForceReorder: true, ForceK: 8, Seed: 5,
		Budget: Budget{MaxWallClock: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("wall-clock expiry must degrade, not error: %v", err)
	}
	if !plan.Degraded {
		t.Fatal("want Degraded=true after wall-clock budget expiry")
	}
	if err := plan.Perm.Validate(m.Rows); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
}
