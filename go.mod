module bootes

go 1.22
