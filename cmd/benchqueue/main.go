// Command benchqueue measures the durable async plan queue in isolation —
// the record behind BENCH_queue.json. Three phases over one journal:
//
//  1. enqueue: spool + fsync-acked journal appends, workers idle
//     (sustained submission throughput and journal growth);
//  2. replay: close the queue cold and reopen it, timing the journal replay
//     that rebuilds the full backlog (the crash-recovery path);
//  3. drain: start the worker pool with an instant stub planner and wait for
//     the backlog to finish (weighted-fair dequeue, terminal journaling,
//     compaction), isolating queue machinery from pipeline cost.
//
// Rerun (from the repo root):
//
//	go run ./cmd/benchqueue -jobs 10000 -out BENCH_queue.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"bootes/internal/planqueue"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

type results struct {
	EnqueueJobs      int     `json:"enqueue_jobs"`
	EnqueueSeconds   float64 `json:"enqueue_seconds"`
	EnqueuePerSec    float64 `json:"enqueue_jobs_per_sec"`
	JournalBytes     int64   `json:"journal_bytes_after_enqueue"`
	ReplayJobs       int64   `json:"replay_jobs"`
	ReplaySeconds    float64 `json:"replay_seconds"`
	ReplayJobsPerSec float64 `json:"replay_jobs_per_sec"`
	DrainSeconds     float64 `json:"drain_seconds"`
	DrainPerSec      float64 `json:"drain_jobs_per_sec"`
	Compactions      int64   `json:"compactions"`
	FinalJournal     int64   `json:"journal_bytes_after_drain"`
}

type document struct {
	Description string            `json:"description"`
	Environment map[string]any    `json:"environment"`
	Workload    map[string]any    `json:"workload"`
	Commands    []string          `json:"commands"`
	Results     results           `json:"results"`
	Summary     map[string]string `json:"summary"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchqueue: ")
	jobs := flag.Int("jobs", 10000, "jobs to enqueue (distinct matrices, so nothing dedupes)")
	workers := flag.Int("workers", 4, "drain-phase worker pool size")
	tenants := flag.Int("tenants", 4, "tenants to spread jobs across (weights 1..n)")
	rows := flag.Int("rows", 16, "rows per synthetic matrix (kept tiny: the queue is under test, not the pipeline)")
	seed := flag.Int64("seed", 7, "workload seed")
	dir := flag.String("dir", "", "queue directory (default: a temp dir, removed afterwards)")
	out := flag.String("out", "", "write the JSON document here (empty = stdout)")
	flag.Parse()

	qdir := *dir
	if qdir == "" {
		var err error
		if qdir, err = os.MkdirTemp("", "benchqueue-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(qdir)
	}

	// The stub planner completes instantly with a structurally valid plan
	// (row reversal), so the drain phase times dequeue + journal + verify
	// machinery rather than eigensolves.
	run := func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		p := make(sparse.Permutation, m.Rows)
		for i := range p {
			p[i] = int32(m.Rows - 1 - i)
		}
		return &reorder.Result{Perm: p, Reordered: true, Extra: map[string]float64{"k": 4}}, nil
	}
	weights := make(map[string]float64, *tenants)
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
		weights[names[i]] = float64(1 + i)
	}
	cfg := planqueue.Config{
		Dir:                qdir,
		Run:                run,
		Workers:            *workers,
		MaxQueued:          *jobs + 1,
		MaxQueuedPerTenant: *jobs + 1,
		Weights:            weights,
		Seed:               *seed,
	}

	q, err := planqueue.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("enqueueing %d jobs (%d tenants, %dx%d matrices) into %s", *jobs, *tenants, *rows, *rows, qdir)
	matrices := make([]*sparse.CSR, *jobs)
	for i := range matrices {
		matrices[i] = workloads.Generate(workloads.ArchRandom, workloads.Params{
			Rows: *rows, Cols: *rows, Density: 0.2, Seed: *seed + int64(i),
		})
	}
	var res results
	res.EnqueueJobs = *jobs
	start := time.Now()
	for i, m := range matrices {
		if _, dup, err := q.Enqueue(names[i%*tenants], m, ""); err != nil {
			log.Fatalf("enqueue %d: %v", i, err)
		} else if dup {
			log.Fatalf("enqueue %d: unexpected dedupe (matrix seeds must differ)", i)
		}
	}
	res.EnqueueSeconds = time.Since(start).Seconds()
	res.EnqueuePerSec = float64(*jobs) / res.EnqueueSeconds
	res.JournalBytes = q.Stats().JournalBytes
	q.Kill() // cold stop: nothing ran, the whole backlog is journal-only

	start = time.Now()
	q, err = planqueue.Open(cfg)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	res.ReplaySeconds = time.Since(start).Seconds()
	res.ReplayJobs = q.Stats().Depth
	res.ReplayJobsPerSec = float64(res.ReplayJobs) / res.ReplaySeconds
	if res.ReplayJobs != int64(*jobs) {
		log.Fatalf("replay recovered %d jobs, want %d", res.ReplayJobs, *jobs)
	}
	log.Printf("replayed %d jobs in %.3fs", res.ReplayJobs, res.ReplaySeconds)

	q.Start()
	start = time.Now()
	if err := q.WaitIdle(context.Background()); err != nil {
		log.Fatalf("drain: %v", err)
	}
	res.DrainSeconds = time.Since(start).Seconds()
	res.DrainPerSec = float64(*jobs) / res.DrainSeconds
	st := q.Stats()
	res.Compactions = st.Compactions
	if st.Done != int64(*jobs) {
		log.Fatalf("drained %d done jobs, want %d (failed=%d dead=%d)", st.Done, *jobs, st.Failed, st.Dead)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := q.Stop(ctx); err != nil {
		log.Fatalf("stop: %v", err)
	}
	res.FinalJournal = q.Stats().JournalBytes
	log.Printf("drained %d jobs in %.3fs (%d compactions)", *jobs, res.DrainSeconds, res.Compactions)

	doc := document{
		Description: "Durable async plan queue: enqueue (fsync-acked) throughput, cold journal replay, and worker-pool drain throughput with an instant stub planner. Queue machinery only; pipeline cost is excluded by design.",
		Environment: map[string]any{
			"go":       runtime.Version(),
			"goos":     runtime.GOOS,
			"goarch":   runtime.GOARCH,
			"cpus":     runtime.NumCPU(),
			"recorded": time.Now().UTC().Format(time.RFC3339),
		},
		Workload: map[string]any{
			"jobs":    *jobs,
			"tenants": *tenants,
			"weights": weights,
			"rows":    *rows,
			"seed":    *seed,
			"workers": *workers,
		},
		Commands: []string{
			fmt.Sprintf("go run ./cmd/benchqueue -jobs %d -workers %d -tenants %d -seed %d -out BENCH_queue.json",
				*jobs, *workers, *tenants, *seed),
		},
		Results: res,
		Summary: map[string]string{
			"enqueue": fmt.Sprintf("%.0f jobs/s acked (fsync per ack), journal %d KB at %d jobs",
				res.EnqueuePerSec, res.JournalBytes>>10, *jobs),
			"replay": fmt.Sprintf("%.3fs to rebuild a %d-job backlog from the journal (%.0f jobs/s)",
				res.ReplaySeconds, res.ReplayJobs, res.ReplayJobsPerSec),
			"drain": fmt.Sprintf("%.0f jobs/s through %d workers (WFQ dequeue + terminal journaling + %d compactions), journal %d KB after drain",
				res.DrainPerSec, *workers, res.Compactions, res.FinalJournal>>10),
		},
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
