// Command bootesd is the Bootes plan-serving daemon: a long-running HTTP
// service that fronts the fault-tolerant planning pipeline with a crash-safe
// persistent plan cache, admission control with load shedding, request
// coalescing, transient-degradation retries, a degradation circuit breaker,
// and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/plan[?perm=1][&path=/srv/m.mtx]   plan an uploaded (or local) matrix
//	POST /v1/plan?async=1                      enqueue for async planning (202 + job id)
//	GET  /v1/jobs/{id}                         poll an async job
//	GET  /v1/cache/{key}                       raw cached entry (fleet peer fill)
//	PUT  /v1/cache/{key}                       verified replica ingest (only with -self-heal)
//	GET  /v1/cache/digest                      key -> (size, CRC) cache summary for anti-entropy
//	GET  /v1/peers                             fleet health view (only with -peers)
//	GET  /healthz                              liveness
//	GET  /readyz                               admission (503 while draining)
//	GET  /statsz                               serving + cache + breaker counters
//	GET  /metrics                              Prometheus text exposition
//	GET  /debug/pprof/*                        runtime profiles (only with -pprof)
//
// Quick start:
//
//	bootesd -addr :8080 -cache /var/lib/bootes/plans &
//	curl --data-binary @A.mtx 'http://localhost:8080/v1/plan?perm=1'
//
// Fleet mode (-peers with -self) shards plan serving across several bootesd
// processes on a consistent-hash ring: requests are forwarded to the key's
// owner, local cache misses consult the key's replica set before computing,
// slow owners get one hedged retry, and dead peers are probed and routed
// around. See the README's fleet quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bootes"
	"bootes/internal/antientropy"
	"bootes/internal/fleet"
	"bootes/internal/obs"
	"bootes/internal/plancache"
	"bootes/internal/planqueue"
	"bootes/internal/planserve"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("bootesd: ")

	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "plan cache directory (empty disables persistence)")
	modelPath := flag.String("model", "", "trained decision-tree model (JSON)")
	seed := flag.Int64("seed", 1, "base random seed (retries mix in the attempt number)")
	maxInFlight := flag.Int("max-inflight", 4, "concurrently executing pipelines")
	maxQueue := flag.Int("max-queue", 0, "requests waiting for a slot before shedding (default 2x max-inflight)")
	deadline := flag.Duration("deadline", 60*time.Second, "per-request planning deadline cap")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain deadline")
	retries := flag.Int("retries", 2, "serve-level retries of transiently degraded plans")
	breakerFails := flag.Int("breaker-failures", 5, "consecutive hard-degraded plans that trip the breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 15*time.Second, "breaker open duration before a half-open probe")
	allowPath := flag.Bool("allow-path", false, "allow ?path= requests reading matrices from this host's filesystem")
	maxUpload := flag.Int64("max-upload-bytes", 256<<20, "maximum matrix upload size in bytes; oversized uploads get 413 before buffering")
	flag.Int64Var(maxUpload, "max-upload", 256<<20, "alias of -max-upload-bytes")
	uploadTimeout := flag.Duration("upload-timeout", 30*time.Second, "maximum time for a request to deliver its matrix body (negative disables)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "maximum time to read a request's headers")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "maximum time to read an entire request")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle timeout")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles on /debug/pprof/ (CPU, heap, goroutine, ...)")
	similarity := flag.String("similarity", "auto", "similarity tier: auto, exact, bitset, approx, or implicit")
	autoK := flag.Bool("auto-k", false, "pick the cluster count by eigengap on the refined similarity (falls back to the fixed-k sweep when ambiguous)")
	queueDir := flag.String("queue-dir", "", "durable async job queue directory (empty disables ?async=1; requires -cache)")
	queueWorkers := flag.Int("queue-workers", 0, "async queue worker pool size (default max-inflight)")
	queueMax := flag.Int("queue-max", 1024, "async jobs queued before submissions shed")
	queueMaxTenant := flag.Int("queue-max-tenant", 0, "async jobs one tenant may have queued (default queue-max/4)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant request quota in requests/second (0 disables)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant quota burst capacity (default ceil(tenant-rate))")
	peersFlag := flag.String("peers", "", "comma-separated fleet member URLs, including this node's (enables fleet routing)")
	selfURL := flag.String("self", "", "this node's advertised URL, as it appears in -peers")
	replicas := flag.Int("replicas", 2, "fleet replica-set size per plan key")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per peer (default 128)")
	hedgeAfter := flag.Duration("hedge-after", 250*time.Millisecond, "fire one hedged duplicate at the next replica after this wait (negative disables)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "fleet peer health-probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe (and per-cache-fill) timeout")
	downAfter := flag.Int("down-after", 2, "consecutive probe/forward failures before a peer is routed around")
	selfHeal := flag.Bool("self-heal", false, "enable anti-entropy self-healing: plan replication, hinted handoff, digest repair, warm-up, scrubbing (requires -peers and -cache)")
	repairInterval := flag.Duration("repair-interval", 30*time.Second, "anti-entropy digest-exchange repair period")
	scrubInterval := flag.Duration("scrub-interval", 5*time.Second, "background scrub pacing, one cache entry per tick")
	warmupDeadline := flag.Duration("warmup-deadline", 5*time.Second, "bound on the pre-ready warm-up that streams owned keys from replicas")
	flag.Parse()

	simMode, err := bootes.ParseSimilarityMode(*similarity)
	if err != nil {
		log.Fatal(err)
	}

	var model *bootes.Model
	if *modelPath != "" {
		data, err := os.ReadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		if model, err = bootes.LoadModel(data); err != nil {
			log.Fatalf("%s: %v", *modelPath, err)
		}
	}

	var cache *plancache.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = plancache.Open(*cacheDir); err != nil {
			log.Fatalf("opening plan cache: %v", err)
		}
		st := cache.Stats()
		log.Printf("plan cache %s: %d entries loaded, %d quarantined", *cacheDir, st.Entries, st.Quarantined)
	}

	// The async queue shares the sync path's pipeline and plan cache, and its
	// worker pool defaults to the admission width: background planning can
	// never out-parallelize what the operator allowed for foreground work.
	var queue *planqueue.Queue
	if *queueDir != "" {
		if cache == nil {
			log.Fatal("-queue-dir requires -cache: async jobs complete into the plan cache")
		}
		workers := *queueWorkers
		if workers <= 0 {
			workers = *maxInFlight
		}
		queue, err = planqueue.Open(planqueue.Config{
			Dir:                *queueDir,
			Run:                planqueue.RunFunc(planFunc(model, *seed, simMode, *autoK)),
			Cache:              cache,
			Workers:            workers,
			MaxQueued:          *queueMax,
			MaxQueuedPerTenant: *queueMaxTenant,
			Metrics:            obs.Default(),
			Seed:               *seed,
			Logf:               log.Printf,
		})
		if err != nil {
			log.Fatalf("opening async queue: %v", err)
		}
		qs := queue.Stats()
		log.Printf("async queue %s: %d jobs recovered to queued, %d torn journal tails truncated",
			*queueDir, qs.Recovered, qs.TornTails)
		queue.Start()
	}

	// Fleet mode: the router owns the ring, the peer health view, and the
	// peer cache-fill hook. It wraps the serving handler below.
	var router *fleet.Router
	if *peersFlag != "" {
		if *selfURL == "" {
			log.Fatal("-peers requires -self: this node must know its own URL on the ring")
		}
		router, err = fleet.New(fleet.Config{
			Self:          *selfURL,
			Peers:         strings.Split(*peersFlag, ","),
			Replicas:      *replicas,
			Vnodes:        *vnodes,
			HedgeAfter:    *hedgeAfter,
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			DownAfter:     *downAfter,
			MaxBodyBytes:  *maxUpload,
			Metrics:       obs.Default(),
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Self-healing rides on fleet mode: the healer shares the router's ring
	// and health view, replicates fresh plans across each key's replica set,
	// parks hints for down replicas, and repairs divergence in the background.
	var healer *antientropy.Healer
	if *selfHeal {
		if router == nil {
			log.Fatal("-self-heal requires -peers: anti-entropy repairs replicas on the fleet ring")
		}
		if cache == nil {
			log.Fatal("-self-heal requires -cache: there is nothing to repair without a persistent plan cache")
		}
		healer, err = antientropy.New(antientropy.Config{
			Cache:          cache,
			Ring:           router.Ring,
			Self:           *selfURL,
			Replicas:       *replicas,
			PeerUp:         router.PeerUp,
			RepairInterval: *repairInterval,
			ScrubInterval:  *scrubInterval,
			Metrics:        obs.Default(),
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		router.SetOnPeerUp(healer.NotifyPeerUp)
	}

	cfg := planserve.Config{
		Plan:            planFunc(model, *seed, simMode, *autoK),
		Cache:           cache,
		Queue:           queue,
		Tenants:         planserve.TenantConfig{Rate: *tenantRate, Burst: *tenantBurst},
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
		MaxRetries:      *retries,
		Breaker: planserve.BreakerConfig{
			FailureThreshold: *breakerFails,
			Cooldown:         *breakerCooldown,
		},
		MaxUploadBytes:    *maxUpload,
		UploadReadTimeout: *uploadTimeout,
		AllowLocalPaths:   *allowPath,
		AutoK:             *autoK,
		Seed:              *seed,
		Metrics:           obs.Default(),
	}
	if router != nil {
		cfg.PeerFill = router.Fill
	}
	if healer != nil {
		cfg.Replicate = healer.Replicate
		cfg.Heal = healer
	}
	srv, err := planserve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The daemon owns the process, so its serving metrics live on the
	// process-wide registry: /metrics then carries serving, pipeline, cache,
	// and verifier families in one exposition. Profiling handlers are
	// registered explicitly (never via the http.DefaultServeMux side effect)
	// and only when asked — pprof on a public address is an information leak.
	handler := srv.Handler()
	if router != nil {
		handler = router.Handler(handler)
		router.Start()
		log.Printf("fleet: self=%s peers=%d replicas=%d hedge-after=%s", *selfURL, len(router.Ring().Nodes()), *replicas, *hedgeAfter)
	}
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		log.Printf("pprof enabled on %s/debug/pprof/", *addr)
	}

	// Server-side timeouts close the slowloris hole: a client that trickles
	// headers or holds idle keep-alives cannot pin a connection forever. The
	// body-read budget is per-request (UploadReadTimeout above), so a legal
	// large upload is bounded by its own clock, not the header one.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// Warming is flagged before the listener serves its first request, so
	// there is no window where /readyz answers 200 with the owned ranges
	// still unfetched. The warm-up itself runs after the listener is up: the
	// cache data plane (digests, entry reads, pushes) serves throughout.
	if healer != nil {
		srv.SetWarming(true)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (inflight=%d queue auto, deadline=%s, cache=%q)",
		*addr, *maxInFlight, *deadline, *cacheDir)
	if healer != nil {
		wctx, wcancel := context.WithTimeout(context.Background(), *warmupDeadline)
		if n := healer.Warmup(wctx); n > 0 {
			log.Printf("self-heal: warmed %d owned entries from replicas before ready", n)
		}
		wcancel()
		srv.SetWarming(false)
		healer.Start()
		log.Printf("self-heal: repair every %s, scrub every %s, %d hints pending",
			*repairInterval, *scrubInterval, healer.HintsPending())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("received %s: draining (deadline %s)", sig, *drain)
	case err := <-errc:
		log.Fatalf("listener failed: %v", err)
	}

	// Graceful shutdown: stop admitting (readyz flips to 503, new plan
	// requests get 503), drain in-flight pipelines — whose cache writes are
	// synchronous, so a clean drain implies a flushed cache — then close the
	// listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// The router stops probing first: a draining node must not keep marking
	// peers up/down from a half-torn-down stack (forwarding keeps working on
	// the last health view while in-flight requests drain).
	if router != nil {
		router.Stop()
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	// Drain push after the plan pipelines settle: entries only this node
	// holds are handed to the other replicas while the listener still
	// answers their verification reads.
	if healer != nil {
		healer.DrainPush(ctx)
		healer.Stop()
	}
	// The queue drains after the HTTP layer: no new submissions can arrive,
	// workers finish their current job, and the shutdown checkpoint compacts
	// the journal so the next start replays a minimal file. Jobs still queued
	// stay journaled and resume on restart.
	if queue != nil {
		if err := queue.Stop(ctx); err != nil {
			log.Printf("queue drain incomplete: %v", err)
		}
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("stopped")
}

// planFunc adapts the core pipeline to the serving layer. Each retry attempt
// mixes the attempt number into the seed so a transient eigensolver failure
// is not deterministically replayed.
func planFunc(model *bootes.Model, seed int64, sim bootes.SimilarityMode, autoK bool) planserve.PlanFunc {
	return func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		opts := &bootes.Options{Seed: seed + int64(attempt)*0x9E3779B9, Model: model, Similarity: sim, AutoK: autoK}
		if dl, ok := ctx.Deadline(); ok {
			opts.Budget.MaxWallClock = time.Until(dl)
		}
		plan, err := bootes.PlanContext(ctx, m, opts)
		if err != nil {
			return nil, err
		}
		return &reorder.Result{
			Perm:           plan.Perm,
			Reordered:      plan.Reordered,
			Degraded:       plan.Degraded,
			DegradedReason: plan.DegradedReason,
			SimilarityMode: plan.SimilarityMode,
			AutoK:          plan.AutoK,
			PreprocessTime: time.Duration(plan.PreprocessSeconds * float64(time.Second)),
			FootprintBytes: plan.FootprintBytes,
			Extra:          map[string]float64{"k": float64(plan.K)},
		}, nil
	}
}
