// Command trainer builds the synthetic labelled corpus, trains the Bootes
// decision-tree gate, reports its accuracy (paper §5.1), and serializes the
// model for use with `bootes -model` and the library's Options.Model.
//
// Usage:
//
//	trainer -out model.json [-scale 0.12] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bootes"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainer: ")
	out := flag.String("out", "model.json", "output path for the trained model")
	scale := flag.Float64("scale", 0.12, "corpus size scale (larger = slower, better calibrated)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	model, stats, err := bootes.TrainModel(*scale, *seed, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	data, err := model.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", *out, len(data))
	fmt.Printf("corpus %d matrices, test accuracy %.1f%%, gate %.1f%%, tolerant %.1f%%\n",
		stats.CorpusSize, 100*stats.TestAccuracy, 100*stats.GateAccuracy, 100*stats.TolerantAccuracy)
}
