// Command benchfast measures the end-to-end planning wall clock of every
// similarity tier on a large synthetic clustered workload — the before/after
// record behind BENCH_fastpath.json. For each requested worker count it runs
// PlanContext once per tier (exact, bitset, approx, implicit, plus what auto
// resolves to) on the same matrix and reports total seconds, the per-stage
// breakdown, and each tier's speedup over the exact merge path.
//
// Rerun (from the repo root):
//
//	go run ./cmd/benchfast -rows 20000 -workers 1,2,4,0 -out BENCH_fastpath.json
//
// 0 in -workers means "the host default" (BOOTES_WORKERS or GOMAXPROCS).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"bootes"
	"bootes/internal/obs"
	"bootes/internal/parallel"
	"bootes/internal/workloads"
)

type stageSeconds map[string]float64

type tierResult struct {
	Tier           string       `json:"tier"`
	Seconds        float64      `json:"seconds"`
	SpeedupVsExact float64      `json:"speedup_vs_exact,omitempty"`
	K              int          `json:"k"`
	Reordered      bool         `json:"reordered"`
	FootprintBytes int64        `json:"footprint_bytes"`
	Stages         stageSeconds `json:"stage_seconds"`
}

type workerBlock struct {
	Workers int          `json:"workers"`
	Tiers   []tierResult `json:"tiers"`
}

type document struct {
	Description string            `json:"description"`
	Environment map[string]any    `json:"environment"`
	Workload    map[string]any    `json:"workload"`
	Commands    []string          `json:"commands"`
	AutoTier    string            `json:"auto_resolves_to"`
	Results     []workerBlock     `json:"results"`
	Summary     map[string]string `json:"summary"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchfast: ")
	rows := flag.Int("rows", 20000, "matrix rows (synthetic clustered workload)")
	nnzPerRow := flag.Int("nnz", 48, "approximate nonzeros per row")
	groups := flag.Int("groups", 16, "hidden row groups")
	workers := flag.String("workers", "1", "comma-separated worker counts (0 = host default)")
	seed := flag.Int64("seed", 7, "workload and planning seed")
	k := flag.Int("k", 8, "forced cluster count (keeps tiers comparable)")
	out := flag.String("out", "", "write the JSON document here (empty = stdout)")
	reps := flag.Int("reps", 1, "runs per tier; the minimum is recorded (denoises shared hosts)")
	tiersFlag := flag.String("tiers", "exact,bitset,approx,implicit", "comma-separated tiers to run (speedups need exact first)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the tier runs here")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	m := workloads.Generate(workloads.ArchScrambledBlock, workloads.Params{
		Rows: *rows, Cols: *rows,
		Density: float64(*nnzPerRow) / float64(*rows),
		Seed:    *seed, Groups: *groups,
	})
	log.Printf("workload: %d×%d, nnz=%d, %d groups", m.Rows, m.Cols, m.NNZ(), *groups)

	auto := bootes.EffectiveSimilarityMode(m, &bootes.Options{Seed: *seed})
	var tiers []bootes.SimilarityMode
	for _, ts := range strings.Split(*tiersFlag, ",") {
		tier, err := bootes.ParseSimilarityMode(strings.TrimSpace(ts))
		if err != nil || tier == bootes.SimAuto {
			log.Fatalf("bad -tiers entry %q (want exact, bitset, approx, or implicit)", ts)
		}
		tiers = append(tiers, tier)
	}

	doc := document{
		Description: "End-to-end PlanContext wall clock per similarity tier on a synthetic " +
			"clustered workload (ArchScrambledBlock). 'exact' is the merge-kernel path that " +
			"was the only explicit option before the fast path; speedup_vs_exact compares " +
			"each tier against it at the same worker count.",
		Environment: map[string]any{
			"go":            runtime.Version(),
			"cores_visible": runtime.NumCPU(),
			"note": "On a single-core host the workers>1 rows time-slice one CPU and match " +
				"workers=1 within noise; rerun on a multi-core host to populate real " +
				"multi-worker wall-clock numbers. Plans are bit-identical across worker " +
				"counts in every tier (asserted by internal/core tests).",
		},
		Workload: map[string]any{
			"archetype": "scrambled-block", "rows": *rows, "nnz": m.NNZ(),
			"nnz_per_row": *nnzPerRow, "groups": *groups, "seed": *seed, "forced_k": *k,
		},
		Commands: []string{
			fmt.Sprintf("go run ./cmd/benchfast -rows %d -nnz %d -groups %d -workers %s -seed %d -reps %d -out BENCH_fastpath.json",
				*rows, *nnzPerRow, *groups, *workers, *seed, *reps),
		},
		AutoTier: auto.String(),
		Summary:  map[string]string{},
	}

	for _, ws := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(ws))
		if err != nil {
			log.Fatalf("bad -workers entry %q: %v", ws, err)
		}
		prev := parallel.SetWorkers(w)
		block := workerBlock{Workers: parallel.Workers()}
		var exactSec float64
		for _, tier := range tiers {
			r := runTier(m, tier, *seed, *k)
			for rep := 1; rep < *reps; rep++ {
				if again := runTier(m, tier, *seed, *k); again.Seconds < r.Seconds {
					r = again
				}
			}
			if tier == bootes.SimExact {
				exactSec = r.Seconds
			} else if exactSec > 0 {
				r.SpeedupVsExact = round2(exactSec / r.Seconds)
			}
			log.Printf("workers=%d %-8s %.3fs", block.Workers, r.Tier, r.Seconds)
			block.Tiers = append(block.Tiers, r)
		}
		parallel.SetWorkers(prev)
		doc.Results = append(doc.Results, block)
		for _, r := range block.Tiers {
			if r.Tier == auto.String() && exactSec > 0 {
				doc.Summary[fmt.Sprintf("workers_%d", block.Workers)] = fmt.Sprintf(
					"auto selects %s: %.3fs vs exact %.3fs (%.2fx)",
					r.Tier, r.Seconds, exactSec, exactSec/r.Seconds)
			}
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

func runTier(m *bootes.Matrix, tier bootes.SimilarityMode, seed int64, k int) tierResult {
	trace := obs.Default().NewTrace()
	ctx := obs.WithTrace(context.Background(), trace)
	start := time.Now()
	plan, err := bootes.PlanContext(ctx, m, &bootes.Options{
		Seed: seed, ForceReorder: true, ForceK: k, Similarity: tier,
	})
	if err != nil {
		log.Fatalf("%s: %v", tier, err)
	}
	elapsed := time.Since(start).Seconds()
	if plan.Degraded {
		log.Fatalf("%s: degraded plan taints the benchmark: %s", tier, plan.DegradedReason)
	}
	if plan.SimilarityMode != tier.String() {
		log.Fatalf("%s: ran tier %q", tier, plan.SimilarityMode)
	}
	stages := stageSeconds{}
	for _, s := range trace.Report() {
		stages[s.Stage] = round4(stages[s.Stage] + s.Seconds)
	}
	return tierResult{
		Tier:           tier.String(),
		Seconds:        round4(elapsed),
		K:              plan.K,
		Reordered:      plan.Reordered,
		FootprintBytes: plan.FootprintBytes,
		Stages:         stages,
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
func round4(x float64) float64 { return float64(int64(x*10000+0.5)) / 10000 }
