package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bootes/internal/faultinject"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// exitSentinel is what the swapped-in osExit panics with so a command under
// test unwinds instead of killing the test process.
type exitSentinel struct{ code int }

// runCLI runs fn with osExit captured and stdout redirected, returning the
// printed output, the exit code, and whether an exit was requested at all.
func runCLI(t *testing.T, fn func()) (out string, code int, exited bool) {
	t.Helper()
	oldExit := osExit
	osExit = func(c int) { panic(exitSentinel{c}) }
	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() {
		os.Stdout = oldStdout
		osExit = oldExit
		w.Close()
		b, rerr := io.ReadAll(r)
		if rerr != nil {
			t.Fatal(rerr)
		}
		out = string(b)
		if p := recover(); p != nil {
			s, ok := p.(exitSentinel)
			if !ok {
				panic(p)
			}
			code, exited = s.code, true
		}
	}()
	fn()
	return
}

// testMatrixFile writes the canonical scrambled block-diagonal workload — a
// matrix the gate reliably chooses to reorder — as a temp .mtx file.
func testMatrixFile(t *testing.T) string {
	t.Helper()
	m := workloads.ScrambledBlock(workloads.Params{
		Rows: 48, Cols: 48, Density: 0.08, Seed: 1, Groups: 4,
	})
	path := filepath.Join(t.TempDir(), "a.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageExitsTwo(t *testing.T) {
	_, code, exited := runCLI(t, usage)
	if !exited || code != 2 {
		t.Fatalf("usage: exited=%v code=%d, want exit 2", exited, code)
	}
}

func TestAnalyzeStatsPrintsStageTable(t *testing.T) {
	in := testMatrixFile(t)
	out, code, exited := runCLI(t, func() {
		cmdAnalyze([]string{"-in", in, "-stats"})
	})
	if exited {
		t.Fatalf("healthy analyze exited with code %d\n%s", code, out)
	}
	for _, want := range []string{"decision:", "stage times:", "features", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze -stats output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeStrictExitsOnDegradedPlan(t *testing.T) {
	in := testMatrixFile(t)
	if err := faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	out, code, exited := runCLI(t, func() {
		cmdAnalyze([]string{"-in", in, "-strict"})
	})
	if !exited || code != 1 {
		t.Fatalf("strict analyze of degraded plan: exited=%v code=%d, want exit 1\n%s",
			exited, code, out)
	}

	// Without -strict the same degraded plan only warns.
	out, code, exited = runCLI(t, func() {
		cmdAnalyze([]string{"-in", in})
	})
	if exited {
		t.Fatalf("non-strict analyze exited with code %d\n%s", code, out)
	}
}

func TestCompareStrictExitsOnDegradedPlan(t *testing.T) {
	in := testMatrixFile(t)
	if err := faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	out, code, exited := runCLI(t, func() {
		cmdCompare([]string{"-in", in, "-strict"})
	})
	if !exited || code != 1 {
		t.Fatalf("strict compare with degraded bootes plan: exited=%v code=%d, want exit 1\n%s",
			exited, code, out)
	}
	// The comparison table itself still prints before the exit.
	for _, want := range []string{"method", "none", "bootes"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareHealthyRunsClean(t *testing.T) {
	in := testMatrixFile(t)
	out, code, exited := runCLI(t, func() {
		cmdCompare([]string{"-in", in, "-strict"})
	})
	if exited {
		t.Fatalf("healthy strict compare exited with code %d\n%s", code, out)
	}
	if !strings.Contains(out, "vs none") {
		t.Errorf("compare output missing header:\n%s", out)
	}
}
