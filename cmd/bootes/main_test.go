package main

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bootes/internal/faultinject"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

// exitSentinel is what the swapped-in osExit panics with so a command under
// test unwinds instead of killing the test process.
type exitSentinel struct{ code int }

// runCLI runs fn with osExit captured and stdout redirected, returning the
// printed output, the exit code, and whether an exit was requested at all.
func runCLI(t *testing.T, fn func()) (out string, code int, exited bool) {
	t.Helper()
	oldExit := osExit
	osExit = func(c int) { panic(exitSentinel{c}) }
	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() {
		os.Stdout = oldStdout
		osExit = oldExit
		w.Close()
		b, rerr := io.ReadAll(r)
		if rerr != nil {
			t.Fatal(rerr)
		}
		out = string(b)
		if p := recover(); p != nil {
			s, ok := p.(exitSentinel)
			if !ok {
				panic(p)
			}
			code, exited = s.code, true
		}
	}()
	fn()
	return
}

// testMatrixFile writes the canonical scrambled block-diagonal workload — a
// matrix the gate reliably chooses to reorder — as a temp .mtx file.
func testMatrixFile(t *testing.T) string {
	t.Helper()
	m := workloads.ScrambledBlock(workloads.Params{
		Rows: 48, Cols: 48, Density: 0.08, Seed: 1, Groups: 4,
	})
	path := filepath.Join(t.TempDir(), "a.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageExitsTwo(t *testing.T) {
	_, code, exited := runCLI(t, usage)
	if !exited || code != 2 {
		t.Fatalf("usage: exited=%v code=%d, want exit 2", exited, code)
	}
}

func TestAnalyzeStatsPrintsStageTable(t *testing.T) {
	in := testMatrixFile(t)
	out, code, exited := runCLI(t, func() {
		cmdAnalyze([]string{"-in", in, "-stats"})
	})
	if exited {
		t.Fatalf("healthy analyze exited with code %d\n%s", code, out)
	}
	for _, want := range []string{"decision:", "stage times:", "features", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze -stats output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeStrictExitsOnDegradedPlan(t *testing.T) {
	in := testMatrixFile(t)
	if err := faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	out, code, exited := runCLI(t, func() {
		cmdAnalyze([]string{"-in", in, "-strict"})
	})
	if !exited || code != 1 {
		t.Fatalf("strict analyze of degraded plan: exited=%v code=%d, want exit 1\n%s",
			exited, code, out)
	}

	// Without -strict the same degraded plan only warns.
	out, code, exited = runCLI(t, func() {
		cmdAnalyze([]string{"-in", in})
	})
	if exited {
		t.Fatalf("non-strict analyze exited with code %d\n%s", code, out)
	}
}

func TestCompareStrictExitsOnDegradedPlan(t *testing.T) {
	in := testMatrixFile(t)
	if err := faultinject.Arm(faultinject.EigenNoConverge, faultinject.Always()); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	out, code, exited := runCLI(t, func() {
		cmdCompare([]string{"-in", in, "-strict"})
	})
	if !exited || code != 1 {
		t.Fatalf("strict compare with degraded bootes plan: exited=%v code=%d, want exit 1\n%s",
			exited, code, out)
	}
	// The comparison table itself still prints before the exit.
	for _, want := range []string{"method", "none", "bootes"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareHealthyRunsClean(t *testing.T) {
	in := testMatrixFile(t)
	out, code, exited := runCLI(t, func() {
		cmdCompare([]string{"-in", in, "-strict"})
	})
	if exited {
		t.Fatalf("healthy strict compare exited with code %d\n%s", code, out)
	}
	if !strings.Contains(out, "vs none") {
		t.Errorf("compare output missing header:\n%s", out)
	}
}

// newRemoteTestClient builds a remoteClient the way planRemote does, against
// the given base URLs.
func newRemoteTestClient(bases []string, maxWait time.Duration) *remoteClient {
	return &remoteClient{
		bases: bases,
		client: &http.Client{
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
		maxRetries: 5,
		rng:        rand.New(rand.NewSource(1)),
		ctx:        context.Background(),
		retryStop:  time.Now().Add(maxWait),
	}
}

// TestRemoteClientFailsOverOn5xx: a 500 from the preferred server moves the
// request to the next one in the list.
func TestRemoteClientFailsOverOn5xx(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"key":"k","reordered":true,"k":8}`)
	}))
	defer good.Close()

	c := newRemoteTestClient([]string{bad.URL, good.URL}, time.Minute)
	resp, body := c.do(http.MethodPost, "/v1/plan", []byte("payload"), 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the failover target", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"reordered":true`) {
		t.Fatalf("unexpected body %q", body)
	}
}

// TestRemoteClientFollowsOwnerRedirect: a 307 from a fleet node is followed
// to the owner, re-sending the payload.
func TestRemoteClientFollowsOwnerRedirect(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ := io.ReadAll(r.Body)
		if string(got) != "payload" {
			t.Errorf("redirected request body %q, want %q", got, "payload")
		}
		io.WriteString(w, `{"key":"k","reordered":true,"k":8}`)
	}))
	defer owner.Close()
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", owner.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c := newRemoteTestClient([]string{front.URL}, time.Minute)
	resp, body := c.do(http.MethodPost, "/v1/plan", []byte("payload"), 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after following the redirect", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"key":"k"`) {
		t.Fatalf("unexpected body %q", body)
	}
}

// TestRemoteClientRetryWallClockCap: a server that sheds forever with a long
// Retry-After cannot hold the client past its -max-wait budget.
func TestRemoteClientRetryWallClockCap(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	defer shedder.Close()

	c := newRemoteTestClient([]string{shedder.URL}, 100*time.Millisecond)
	start := time.Now()
	resp, _ := c.do(http.MethodPost, "/v1/plan", []byte("payload"), 0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429 surfaced", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ran %s; the 100ms wall-clock budget did not cap it", elapsed)
	}
}

// TestPlanRemoteEndToEnd drives cmdPlan against a stub daemon, covering the
// multi-server flag parsing and ring preference path.
func TestPlanRemoteEndToEnd(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"key":"feedc0de","reordered":true,"k":8,"cached":true}`)
	}))
	defer srv.Close()
	in := testMatrixFile(t)
	out, _, exited := runCLI(t, func() {
		cmdPlan([]string{"-in", in, "-server", srv.URL + "," + srv.URL, "-timeout", "5s"})
	})
	if exited {
		t.Fatalf("cmdPlan exited; output:\n%s", out)
	}
	if !strings.Contains(out, "feedc0de") || !strings.Contains(out, "cache hit") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
