// Command bootes analyzes, reorders, and simulates sparse matrices with the
// Bootes pipeline. Matrices are read and written in Matrix Market format.
//
// Usage:
//
//	bootes analyze  -in A.mtx                     # features + gate decision
//	bootes reorder  -in A.mtx -out A_reordered.mtx [-k 8] [-force] [-model model.json]
//	bootes simulate -in A.mtx [-accel Flexagon] [-reorder bootes|gamma|graph|hier|none]
//	bootes compare  -in A.mtx [-accel GAMMA]      # all methods side by side
//	bootes spy      -in A.mtx [-pgm out.pgm]      # sparsity pattern plot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bootes"
	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/reorder"
	"bootes/internal/sparse"
	"bootes/internal/spy"
	"bootes/internal/trafficmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bootes: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "analyze":
		cmdAnalyze(args)
	case "reorder":
		cmdReorder(args)
	case "simulate":
		cmdSimulate(args)
	case "compare":
		cmdCompare(args)
	case "spy":
		cmdSpy(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bootes <analyze|reorder|simulate|compare|spy> [flags]")
	os.Exit(2)
}

func readMatrix(path string) *sparse.CSR {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := sparse.ReadMatrixMarket(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func loadModel(path string) *bootes.Model {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	m, err := bootes.LoadModel(data)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	model := fs.String("model", "", "trained decision-tree model (JSON)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("analyze: -in is required")
	}
	m := readMatrix(*in)
	fmt.Printf("matrix: %s\n", m)

	feats := core.ExtractFeatures(m, core.FeatureOptions{Seed: *seed})
	vec := feats.Vector()
	for i, name := range core.FeatureNames {
		fmt.Printf("  %-12s %.6g\n", name, vec[i])
	}

	opts := &bootes.Options{Seed: *seed, Model: loadModel(*model)}
	plan, err := bootes.Plan(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	if plan.Reordered {
		fmt.Printf("decision: reorder with k=%d (planning took %.3fs, footprint %d KB)\n",
			plan.K, plan.PreprocessSeconds, plan.FootprintBytes>>10)
	} else {
		fmt.Println("decision: do not reorder (predicted benefit below threshold)")
	}
}

func cmdReorder(args []string) {
	fs := flag.NewFlagSet("reorder", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	out := fs.String("out", "", "output path for the reordered matrix")
	permOut := fs.String("perm", "", "optional path to write the permutation (one old-row index per line)")
	k := fs.Int("k", 0, "force cluster count (2,4,8,16,32); 0 = let the gate choose")
	force := fs.Bool("force", false, "reorder even if the gate declines")
	model := fs.String("model", "", "trained decision-tree model (JSON)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("reorder: -in and -out are required")
	}
	m := readMatrix(*in)
	plan, err := bootes.Plan(m, &bootes.Options{
		Seed: *seed, ForceK: *k, ForceReorder: *force, Model: loadModel(*model),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !plan.Reordered {
		fmt.Println("gate declined to reorder; writing the matrix unchanged (use -force to override)")
	}
	pm, err := plan.Apply(m)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sparse.WriteMatrixMarket(f, pm); err != nil {
		log.Fatal(err)
	}
	if *permOut != "" {
		pf, err := os.Create(*permOut)
		if err != nil {
			log.Fatal(err)
		}
		defer pf.Close()
		for _, old := range plan.Perm {
			fmt.Fprintln(pf, old)
		}
	}
	fmt.Printf("reordered %s -> %s (k=%d, %.3fs)\n", *in, *out, plan.K, plan.PreprocessSeconds)
}

func accelByName(name string) (accel.Config, bool) {
	for _, cfg := range accel.Targets() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return accel.Config{}, false
}

func reordererByName(name string, seed int64) (reorder.Reorderer, bool) {
	switch name {
	case "bootes":
		return &core.Pipeline{Spectral: core.SpectralOptions{Seed: seed}}, true
	case "gamma":
		return reorder.Gamma{Seed: seed}, true
	case "graph":
		return reorder.Graph{Seed: seed}, true
	case "hier":
		return reorder.Hier{}, true
	case "none", "original":
		return reorder.Original{}, true
	default:
		return nil, false
	}
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "", "input matrix A (B is A, or Aᵀ when A is rectangular)")
	accelName := fs.String("accel", "Flexagon", "accelerator: Flexagon, GAMMA, Trapezoid")
	method := fs.String("reorder", "bootes", "reordering: bootes, gamma, graph, hier, none")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("simulate: -in is required")
	}
	cfg, ok := accelByName(*accelName)
	if !ok {
		log.Fatalf("unknown accelerator %q", *accelName)
	}
	r, ok := reordererByName(*method, *seed)
	if !ok {
		log.Fatalf("unknown reordering method %q", *method)
	}

	a := readMatrix(*in)
	b := a
	if a.Rows != a.Cols {
		b = sparse.Transpose(a)
	}
	res, err := r.Reorder(a)
	if err != nil {
		log.Fatal(err)
	}
	ap := a
	if !res.Perm.IsIdentity() {
		ap, err = sparse.PermuteRows(a, res.Perm)
		if err != nil {
			log.Fatal(err)
		}
	}
	sim, err := accel.SimulateRowWise(cfg, ap, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator: %s\n", cfg)
	fmt.Printf("reordering:  %s (%.3fs preprocessing)\n", r.Name(), res.PreprocessTime.Seconds())
	fmt.Printf("traffic:     A %d B %d C %d total %d bytes (compulsory %d)\n",
		sim.Traffic.ABytes, sim.Traffic.BBytes, sim.Traffic.CBytes,
		sim.Traffic.Total(), sim.Compulsory.Total())
	fmt.Printf("compute:     %d MACs, nnz(C)=%d, %d cycles (%.6fs at %.1f GHz)\n",
		sim.Flops, sim.OutputNNZ, sim.Cycles, sim.Seconds(), 1.0)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	accelName := fs.String("accel", "GAMMA", "accelerator: Flexagon, GAMMA, Trapezoid")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("compare: -in is required")
	}
	cfg, ok := accelByName(*accelName)
	if !ok {
		log.Fatalf("unknown accelerator %q", *accelName)
	}
	a := readMatrix(*in)
	b := a
	if a.Rows != a.Cols {
		b = sparse.Transpose(a)
	}
	fmt.Printf("%s on %s\n", a, cfg)
	fmt.Printf("%-10s %12s %12s %14s %12s\n", "method", "preproc(s)", "B traffic", "total traffic", "vs none")
	var baseTotal int64
	for _, name := range []string{"none", "gamma", "graph", "hier", "bootes"} {
		r, _ := reordererByName(name, *seed)
		res, err := r.Reorder(a)
		if err != nil {
			log.Fatal(err)
		}
		// Quick traffic estimate via the row-LRU model, plus full sim total.
		est, err := trafficmodel.EstimateBWithPerm(a, b, res.Perm, cfg.CacheBytes, 12)
		if err != nil {
			log.Fatal(err)
		}
		ap := a
		if !res.Perm.IsIdentity() {
			ap, err = sparse.PermuteRows(a, res.Perm)
			if err != nil {
				log.Fatal(err)
			}
		}
		sim, err := accel.SimulateRowWise(cfg, ap, b)
		if err != nil {
			log.Fatal(err)
		}
		if name == "none" {
			baseTotal = sim.Traffic.Total()
		}
		fmt.Printf("%-10s %12.3f %12d %14d %11.2fx\n",
			name, res.PreprocessTime.Seconds(), est.BTraffic, sim.Traffic.Total(),
			float64(baseTotal)/float64(sim.Traffic.Total()))
	}
}

func cmdSpy(args []string) {
	fs := flag.NewFlagSet("spy", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	pgm := fs.String("pgm", "", "also write a PGM image to this path")
	width := fs.Int("width", 64, "ASCII plot width")
	height := fs.Int("height", 32, "ASCII plot height")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("spy: -in is required")
	}
	m := readMatrix(*in)
	fmt.Printf("%s\n", m)
	fmt.Print(spy.ASCII(m, spy.Options{Width: *width, Height: *height}))
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := spy.WritePGM(f, m, spy.Options{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pgm)
	}
}
