// Command bootes analyzes, reorders, and simulates sparse matrices with the
// Bootes pipeline. Matrices are read and written in Matrix Market format.
//
// Usage:
//
//	bootes analyze  -in A.mtx [-timeout 30s] [-strict] [-stats]   # features + gate decision
//	bootes reorder  -in A.mtx -out A_reordered.mtx [-k 8] [-force] [-model model.json]
//	bootes simulate -in A.mtx [-accel Flexagon] [-reorder bootes|gamma|graph|hier|none]
//	bootes compare  -in A.mtx [-accel GAMMA]      # all methods side by side
//	bootes spy      -in A.mtx [-pgm out.pgm]      # sparsity pattern plot
//	bootes plan     -in A.mtx [-server http://localhost:8080] [-async] [-tenant team-a]  # plan via a running bootesd
//
// Commands that run the planning pipeline (analyze, reorder, plan) accept
// -timeout (a planning deadline, enforced through PlanContext), -strict
// (exit non-zero when the plan is degraded), -similarity
// (auto|exact|bitset|approx|implicit — the similarity construction tier;
// auto picks from the matrix size), and -auto-k (pick the cluster count by
// the largest eigengap of the refined similarity instead of the decision
// tree's fixed candidate k; ambiguous spectra fall back to the fixed-k
// sweep). Degraded plans always print a warning to stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bootes"
	"bootes/internal/accel"
	"bootes/internal/core"
	"bootes/internal/obs"
	"bootes/internal/plancache/atomicio"
	"bootes/internal/reorder"
	"bootes/internal/ring"
	"bootes/internal/sparse"
	"bootes/internal/spy"
	"bootes/internal/trafficmodel"
)

// osExit is swapped out by in-process CLI tests so exit codes can be asserted
// without forking a subprocess.
var osExit = os.Exit

func main() {
	log.SetFlags(0)
	log.SetPrefix("bootes: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "analyze":
		cmdAnalyze(args)
	case "reorder":
		cmdReorder(args)
	case "simulate":
		cmdSimulate(args)
	case "compare":
		cmdCompare(args)
	case "spy":
		cmdSpy(args)
	case "plan":
		cmdPlan(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bootes <analyze|reorder|simulate|compare|spy|plan> [flags]")
	osExit(2)
}

// planCtx derives the planning context from a -timeout flag value. The
// deadline itself is enforced by Options.Budget.MaxWallClock, which degrades
// the plan gracefully; the context gets slack beyond it and acts only as a
// hard backstop should the budget path ever wedge.
func planCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout+30*time.Second)
	}
	return context.Background(), func() {}
}

// warnDegraded surfaces a degraded plan on stderr and, under -strict, exits
// non-zero. Call it after all regular output has been printed.
func warnDegraded(degraded bool, reason string, strict bool) {
	if !degraded {
		return
	}
	log.Printf("warning: plan degraded: %s", reason)
	if strict {
		osExit(1)
	}
}

// writeFileAtomic publishes a CLI output file through the temp+fsync+rename
// protocol, so an interrupted run never leaves a torn output.
func writeFileAtomic(path string, write func(io.Writer) error) {
	if err := atomicio.WriteFile(path, write); err != nil {
		log.Fatal(err)
	}
}

func readMatrix(path string) *sparse.CSR {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := sparse.ReadMatrixMarket(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func loadModel(path string) *bootes.Model {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	m, err := bootes.LoadModel(data)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	model := fs.String("model", "", "trained decision-tree model (JSON)")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 0, "planning deadline (0 = none)")
	strict := fs.Bool("strict", false, "exit non-zero if the plan is degraded")
	stats := fs.Bool("stats", false, "print a per-stage planning time table")
	similarity := similarityFlag(fs)
	autoK := autoKFlag(fs)
	fs.Parse(args)
	if *in == "" {
		log.Fatal("analyze: -in is required")
	}
	m := readMatrix(*in)
	fmt.Printf("matrix: %s\n", m)

	feats := core.ExtractFeatures(m, core.FeatureOptions{Seed: *seed})
	vec := feats.Vector()
	for i, name := range core.FeatureNames {
		fmt.Printf("  %-12s %.6g\n", name, vec[i])
	}

	ctx, cancel := planCtx(*timeout)
	defer cancel()
	var trace *obs.Trace
	if *stats {
		trace = obs.Default().NewTrace()
		ctx = obs.WithTrace(ctx, trace)
	}
	opts := &bootes.Options{Seed: *seed, Model: loadModel(*model), Similarity: parseSimilarity(*similarity), AutoK: *autoK}
	if *timeout > 0 {
		opts.Budget.MaxWallClock = *timeout
	}
	plan, err := bootes.PlanContext(ctx, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	if plan.Reordered {
		fmt.Printf("decision: reorder with k=%d (planning took %.3fs, footprint %d KB)\n",
			plan.K, plan.PreprocessSeconds, plan.FootprintBytes>>10)
	} else {
		fmt.Println("decision: do not reorder (predicted benefit below threshold)")
	}
	if plan.SimilarityMode != "" {
		fmt.Printf("similarity: %s tier\n", plan.SimilarityMode)
	}
	if plan.AutoK != "" {
		fmt.Printf("auto-k:    %s\n", plan.AutoK)
	}
	if trace != nil {
		fmt.Print(trace.Table())
	}
	warnDegraded(plan.Degraded, plan.DegradedReason, *strict)
}

func cmdReorder(args []string) {
	fs := flag.NewFlagSet("reorder", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	out := fs.String("out", "", "output path for the reordered matrix")
	permOut := fs.String("perm", "", "optional path to write the permutation (one old-row index per line)")
	k := fs.Int("k", 0, "force cluster count (2,4,8,16,32); 0 = let the gate choose")
	force := fs.Bool("force", false, "reorder even if the gate declines")
	model := fs.String("model", "", "trained decision-tree model (JSON)")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 0, "planning deadline (0 = none)")
	strict := fs.Bool("strict", false, "exit non-zero if the plan is degraded")
	similarity := similarityFlag(fs)
	autoK := autoKFlag(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("reorder: -in and -out are required")
	}
	m := readMatrix(*in)
	ctx, cancel := planCtx(*timeout)
	defer cancel()
	opts := &bootes.Options{
		Seed: *seed, ForceK: *k, ForceReorder: *force, Model: loadModel(*model),
		Similarity: parseSimilarity(*similarity), AutoK: *autoK,
	}
	if *timeout > 0 {
		opts.Budget.MaxWallClock = *timeout
	}
	plan, err := bootes.PlanContext(ctx, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !plan.Reordered {
		fmt.Println("gate declined to reorder; writing the matrix unchanged (use -force to override)")
	}
	pm, err := plan.Apply(m)
	if err != nil {
		log.Fatal(err)
	}
	writeFileAtomic(*out, func(w io.Writer) error {
		return sparse.WriteMatrixMarket(w, pm)
	})
	if *permOut != "" {
		writeFileAtomic(*permOut, func(w io.Writer) error {
			for _, old := range plan.Perm {
				if _, err := fmt.Fprintln(w, old); err != nil {
					return err
				}
			}
			return nil
		})
	}
	fmt.Printf("reordered %s -> %s (k=%d, %.3fs)\n", *in, *out, plan.K, plan.PreprocessSeconds)
	warnDegraded(plan.Degraded, plan.DegradedReason, *strict)
}

func accelByName(name string) (accel.Config, bool) {
	for _, cfg := range accel.Targets() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return accel.Config{}, false
}

func reordererByName(name string, seed int64) (reorder.Reorderer, bool) {
	switch name {
	case "bootes":
		return &core.Pipeline{Spectral: core.SpectralOptions{Seed: seed}}, true
	case "gamma":
		return reorder.Gamma{Seed: seed}, true
	case "graph":
		return reorder.Graph{Seed: seed}, true
	case "hier":
		return reorder.Hier{}, true
	case "none", "original":
		return reorder.Original{}, true
	default:
		return nil, false
	}
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "", "input matrix A (B is A, or Aᵀ when A is rectangular)")
	accelName := fs.String("accel", "Flexagon", "accelerator: Flexagon, GAMMA, Trapezoid")
	method := fs.String("reorder", "bootes", "reordering: bootes, gamma, graph, hier, none")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("simulate: -in is required")
	}
	cfg, ok := accelByName(*accelName)
	if !ok {
		log.Fatalf("unknown accelerator %q", *accelName)
	}
	r, ok := reordererByName(*method, *seed)
	if !ok {
		log.Fatalf("unknown reordering method %q", *method)
	}

	a := readMatrix(*in)
	b := a
	if a.Rows != a.Cols {
		b = sparse.Transpose(a)
	}
	res, err := r.Reorder(a)
	if err != nil {
		log.Fatal(err)
	}
	ap := a
	if !res.Perm.IsIdentity() {
		ap, err = sparse.PermuteRows(a, res.Perm)
		if err != nil {
			log.Fatal(err)
		}
	}
	sim, err := accel.SimulateRowWise(cfg, ap, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator: %s\n", cfg)
	fmt.Printf("reordering:  %s (%.3fs preprocessing)\n", r.Name(), res.PreprocessTime.Seconds())
	fmt.Printf("traffic:     A %d B %d C %d total %d bytes (compulsory %d)\n",
		sim.Traffic.ABytes, sim.Traffic.BBytes, sim.Traffic.CBytes,
		sim.Traffic.Total(), sim.Compulsory.Total())
	fmt.Printf("compute:     %d MACs, nnz(C)=%d, %d cycles (%.6fs at %.1f GHz)\n",
		sim.Flops, sim.OutputNNZ, sim.Cycles, sim.Seconds(), 1.0)
}

// reorderWithTimeout runs r with a deadline when it supports one (the
// Bootes pipeline does; the baselines run to completion regardless). The
// deadline is applied as the pipeline's wall-clock budget so expiry degrades
// the plan instead of erroring; the context is a backstop with slack.
func reorderWithTimeout(r reorder.Reorderer, a *sparse.CSR, timeout time.Duration) (*reorder.Result, error) {
	if p, ok := r.(*core.Pipeline); ok && timeout > 0 {
		p.Budget.MaxWallClock = timeout
		ctx, cancel := context.WithTimeout(context.Background(), timeout+30*time.Second)
		defer cancel()
		return p.ReorderContext(ctx, a)
	}
	return r.Reorder(a)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	accelName := fs.String("accel", "GAMMA", "accelerator: Flexagon, GAMMA, Trapezoid")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 0, "per-method planning deadline (0 = none; only Bootes honors it)")
	strict := fs.Bool("strict", false, "exit non-zero if any plan is degraded")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("compare: -in is required")
	}
	cfg, ok := accelByName(*accelName)
	if !ok {
		log.Fatalf("unknown accelerator %q", *accelName)
	}
	a := readMatrix(*in)
	b := a
	if a.Rows != a.Cols {
		b = sparse.Transpose(a)
	}
	fmt.Printf("%s on %s\n", a, cfg)
	fmt.Printf("%-10s %12s %12s %14s %12s\n", "method", "preproc(s)", "B traffic", "total traffic", "vs none")
	var baseTotal int64
	degradedReasons := map[string]string{}
	for _, name := range []string{"none", "gamma", "graph", "hier", "bootes"} {
		r, _ := reordererByName(name, *seed)
		res, err := reorderWithTimeout(r, a, *timeout)
		if err != nil {
			log.Fatal(err)
		}
		if res.Degraded {
			degradedReasons[name] = res.DegradedReason
		}
		// Quick traffic estimate via the row-LRU model, plus full sim total.
		est, err := trafficmodel.EstimateBWithPerm(a, b, res.Perm, cfg.CacheBytes, 12)
		if err != nil {
			log.Fatal(err)
		}
		ap := a
		if !res.Perm.IsIdentity() {
			ap, err = sparse.PermuteRows(a, res.Perm)
			if err != nil {
				log.Fatal(err)
			}
		}
		sim, err := accel.SimulateRowWise(cfg, ap, b)
		if err != nil {
			log.Fatal(err)
		}
		if name == "none" {
			baseTotal = sim.Traffic.Total()
		}
		fmt.Printf("%-10s %12.3f %12d %14d %11.2fx\n",
			name, res.PreprocessTime.Seconds(), est.BTraffic, sim.Traffic.Total(),
			float64(baseTotal)/float64(sim.Traffic.Total()))
	}
	for _, name := range []string{"none", "gamma", "graph", "hier", "bootes"} {
		if reason, ok := degradedReasons[name]; ok {
			log.Printf("warning: %s plan degraded: %s", name, reason)
		}
	}
	if *strict && len(degradedReasons) > 0 {
		osExit(1)
	}
}

func cmdSpy(args []string) {
	fs := flag.NewFlagSet("spy", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market)")
	pgm := fs.String("pgm", "", "also write a PGM image to this path")
	width := fs.Int("width", 64, "ASCII plot width")
	height := fs.Int("height", 32, "ASCII plot height")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("spy: -in is required")
	}
	m := readMatrix(*in)
	fmt.Printf("%s\n", m)
	fmt.Print(spy.ASCII(m, spy.Options{Width: *width, Height: *height}))
	if *pgm != "" {
		writeFileAtomic(*pgm, func(w io.Writer) error {
			return spy.WritePGM(w, m, spy.Options{})
		})
		fmt.Printf("wrote %s\n", *pgm)
	}
}

// cmdPlan plans a matrix through a running bootesd daemon, falling back to
// an in-process PlanContext when no -server is given (optionally with a
// local persistent plan cache, the same format the daemon uses).
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	in := fs.String("in", "", "input matrix (Matrix Market or .bcsr)")
	server := fs.String("server", "", "bootesd base URL(s), comma-separated for a fleet (e.g. http://a:8080,http://b:8080); empty plans in-process")
	cacheDir := fs.String("cache", "", "local plan cache directory (in-process mode only)")
	model := fs.String("model", "", "trained decision-tree model (JSON; in-process mode only)")
	seed := fs.Int64("seed", 1, "random seed (in-process mode only)")
	timeout := fs.Duration("timeout", 60*time.Second, "planning deadline (sent as X-Deadline to the daemon)")
	maxWait := fs.Duration("max-wait", 0, "total wall-clock budget across shed retries and failovers (default 2x timeout + 30s)")
	strict := fs.Bool("strict", false, "exit non-zero if the plan is degraded")
	async := fs.Bool("async", false, "submit to the daemon's async queue and poll the job until it finishes (needs -server)")
	tenant := fs.String("tenant", "", "tenant identity sent as X-Tenant (quota accounting on the daemon)")
	retries := fs.Int("retries", 5, "max retries when the daemon sheds with 429 (Retry-After is honored)")
	similarity := similarityFlag(fs)
	autoK := autoKFlag(fs)
	fs.Parse(args)
	if *in == "" {
		log.Fatal("plan: -in is required")
	}
	if *server != "" {
		planRemote(*server, *in, *timeout, *maxWait, *strict, *async, *tenant, *retries)
		return
	}
	if *async {
		log.Fatal("plan: -async requires -server (in-process planning is already synchronous)")
	}

	m := readMatrix(*in)
	ctx, cancel := planCtx(*timeout)
	defer cancel()
	opts := &bootes.Options{Seed: *seed, Model: loadModel(*model), Similarity: parseSimilarity(*similarity), AutoK: *autoK}
	if *timeout > 0 {
		opts.Budget.MaxWallClock = *timeout
	}
	if *cacheDir != "" {
		cache, err := bootes.OpenPlanCache(*cacheDir)
		if err != nil {
			log.Fatalf("opening plan cache: %v", err)
		}
		opts.Cache = cache
	}
	plan, err := bootes.PlanContext(ctx, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	source := "computed"
	if plan.FromCache {
		source = "cache hit"
	}
	fmt.Printf("key:       %s\n", bootes.MatrixKey(m))
	fmt.Printf("plan:      reordered=%v k=%d (%s, %.3fs, footprint %d KB)\n",
		plan.Reordered, plan.K, source, plan.PreprocessSeconds, plan.FootprintBytes>>10)
	if plan.SimilarityMode != "" {
		fmt.Printf("similarity: %s tier\n", plan.SimilarityMode)
	}
	if plan.AutoK != "" {
		fmt.Printf("auto-k:    %s\n", plan.AutoK)
	}
	warnDegraded(plan.Degraded, plan.DegradedReason, *strict)
}

// similarityFlag registers the shared -similarity flag on a planning command.
func similarityFlag(fs *flag.FlagSet) *string {
	return fs.String("similarity", "auto", "similarity tier: auto, exact, bitset, approx, or implicit")
}

// autoKFlag registers the shared -auto-k flag on a planning command.
func autoKFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("auto-k", false, "pick the cluster count by eigengap on the refined similarity (falls back to the fixed-k sweep when ambiguous)")
}

// parseSimilarity maps the flag value to a mode, exiting on bad input.
func parseSimilarity(s string) bootes.SimilarityMode {
	mode, err := bootes.ParseSimilarityMode(s)
	if err != nil {
		log.Fatal(err)
	}
	return mode
}

// remotePlan mirrors the daemon's PlanResponse fields the CLI reports on.
type remotePlan struct {
	Key               string  `json:"key"`
	Reordered         bool    `json:"reordered"`
	K                 int     `json:"k"`
	Degraded          bool    `json:"degraded"`
	DegradedReason    string  `json:"degradedReason"`
	PreprocessSeconds float64 `json:"preprocessSeconds"`
	AutoK             string  `json:"autoK"`
	Cached            bool    `json:"cached"`
	Coalesced         bool    `json:"coalesced"`
	Breaker           string  `json:"breaker"`
}

// remoteJob mirrors the daemon's JobResponse for the async submit/poll path.
type remoteJob struct {
	JobID    string      `json:"job_id"`
	State    string      `json:"state"`
	Attempts int         `json:"attempts"`
	Deduped  bool        `json:"deduped"`
	Reason   string      `json:"reason"`
	Plan     *remotePlan `json:"plan"`
}

// remoteClient wraps one or more bootesd endpoints with shed-aware retries
// and fleet failover: a 429 reply is retried up to maxRetries times (and
// within the retryBudget wall-clock cap), sleeping for the server's
// Retry-After hint (jittered so a shed burst does not re-synchronize); a
// transport error or 5xx fails over to the next server in ring-preference
// order; 307/308 redirects (a fleet node pointing at the key's owner) are
// followed, re-sending the payload.
type remoteClient struct {
	bases      []string // ring-preference order; bases[0] is primary
	client     *http.Client
	tenant     string
	maxRetries int
	rng        *rand.Rand
	ctx        context.Context // cancelled on SIGINT/SIGTERM
	retryStop  time.Time       // wall-clock cap across all retry sleeps
}

// base is the primary endpoint, for messages.
func (c *remoteClient) base() string { return c.bases[0] }

// sleep waits d or until the client is interrupted, whichever is first.
func (c *remoteClient) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.ctx.Done():
		log.Fatalf("interrupted while waiting to retry")
	}
}

// do issues one request and returns the final response metadata plus its
// size-capped body. Retried-429 sleeps never push past retryStop: a server
// that keeps answering "Retry-After: 30" cannot hold the CLI hostage beyond
// -max-wait. Only 429s are retried in place; transport errors and 5xx move
// on to the next server; other failures are the caller's to interpret.
func (c *remoteClient) do(method, path string, payload []byte, deadline time.Duration) (*http.Response, []byte) {
	for attempt := 0; ; attempt++ {
		resp, reply := c.doOnce(method, path, payload, deadline)
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return resp, reply
		}
		wait := c.backoff(resp.Header.Get("Retry-After"), attempt)
		if budget := time.Until(c.retryStop); wait > budget {
			log.Printf("daemon shedding (429) and the %s retry budget is exhausted; giving up", wait.Round(time.Millisecond))
			return resp, reply
		}
		log.Printf("daemon shedding (429): %s — retrying in %s (%d/%d)",
			strings.TrimSpace(string(reply)), wait.Round(time.Millisecond), attempt+1, c.maxRetries)
		c.sleep(wait)
	}
}

// doOnce walks the server list once in preference order, following up to 3
// owner redirects, until some server produces a non-5xx response.
func (c *remoteClient) doOnce(method, path string, payload []byte, deadline time.Duration) (*http.Response, []byte) {
	var lastErr error
	for i, base := range c.bases {
		url := base + path
		for redirect := 0; redirect <= 3; redirect++ {
			resp, reply, err := c.roundTrip(method, url, payload, deadline)
			if err != nil {
				lastErr = err
				if i < len(c.bases)-1 {
					log.Printf("server %s unreachable (%v), failing over", base, err)
				}
				break
			}
			switch {
			case resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect:
				loc := resp.Header.Get("Location")
				if loc == "" || redirect == 3 {
					return resp, reply
				}
				url = loc
				continue
			case resp.StatusCode >= http.StatusInternalServerError && i < len(c.bases)-1:
				log.Printf("server %s answered %s, failing over", base, resp.Status)
				lastErr = fmt.Errorf("%s: %s", base, resp.Status)
			default:
				return resp, reply
			}
			break
		}
	}
	log.Fatalf("no server answered: %v", lastErr)
	return nil, nil
}

// roundTrip is one HTTP exchange against one URL.
func (c *remoteClient) roundTrip(method, url string, payload []byte, deadline time.Duration) (*http.Response, []byte, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(c.ctx, method, url, body)
	if err != nil {
		log.Fatal(err)
	}
	if deadline > 0 {
		req.Header.Set("X-Deadline", deadline.String())
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if c.ctx.Err() != nil {
			log.Fatalf("interrupted: %v", c.ctx.Err())
		}
		return nil, nil, err
	}
	reply, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, reply, nil
}

// backoff converts a Retry-After header into a sleep. The server's hint wins
// when present (quota refill times are tenant-specific); otherwise the delay
// grows exponentially from 500ms. Both are capped at 30s and stretched by up
// to 50% jitter so concurrent shed clients do not retry in lockstep.
func (c *remoteClient) backoff(retryAfter string, attempt int) time.Duration {
	wait := 500 * time.Millisecond << min(attempt, 10)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	return wait + time.Duration(c.rng.Int63n(int64(wait)/2+1))
}

// planRemote posts the matrix file to a bootesd daemon (or fleet) and prints
// the reply, either synchronously or (with -async) via the durable job queue.
// With several servers the matrix is hashed locally and the list is reordered
// to ring preference, so the first try lands on the key's owner and a cache
// hit costs one hop.
func planRemote(server, in string, timeout, maxWait time.Duration, strict, async bool, tenant string, maxRetries int) {
	payload, err := os.ReadFile(in)
	if err != nil {
		log.Fatal(err)
	}
	var bases []string
	for _, s := range strings.Split(server, ",") {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			bases = append(bases, s)
		}
	}
	if len(bases) == 0 {
		log.Fatal("plan: -server lists no URLs")
	}
	if len(bases) > 1 {
		// Hash the matrix locally and reorder the server list to the key's
		// ring preference: the first try lands on the owner, so a fleet-wide
		// cache hit costs one hop and no forward.
		var m *sparse.CSR
		if bytes.HasPrefix(payload, []byte("BCSR")) {
			m, err = sparse.ReadBinary(bytes.NewReader(payload))
		} else {
			m, err = sparse.ReadMatrixMarket(bytes.NewReader(payload))
		}
		if err == nil {
			if r, rerr := ring.New(bases, 0); rerr == nil {
				bases = r.Replicas(bootes.MatrixKey(m), len(bases))
			}
		}
	}
	client := &http.Client{
		// Redirects are followed manually (doOnce) so the hop cap and the
		// failover logic see them.
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	if timeout > 0 {
		// Leave headroom over the planning deadline for transfer time.
		client.Timeout = timeout + 30*time.Second
	}
	if maxWait <= 0 {
		maxWait = 5 * time.Minute
		if timeout > 0 {
			maxWait = 2*timeout + 30*time.Second
		}
	}
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()
	c := &remoteClient{
		bases:      bases,
		client:     client,
		tenant:     tenant,
		maxRetries: max(maxRetries, 0),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		ctx:        ctx,
		retryStop:  time.Now().Add(maxWait),
	}
	if async {
		planRemoteAsync(c, payload, timeout, strict)
		return
	}
	resp, body := c.do(http.MethodPost, "/v1/plan", payload, timeout)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s: %s", server, resp.Status, strings.TrimSpace(string(body)))
	}
	var pr remotePlan
	if err := json.Unmarshal(body, &pr); err != nil {
		log.Fatalf("decoding daemon response: %v", err)
	}
	source := "computed"
	switch {
	case pr.Cached:
		source = "cache hit"
	case pr.Coalesced:
		source = "coalesced"
	case pr.Breaker == "open":
		source = "breaker fast-path"
	}
	printRemotePlan(&pr, source)
	warnDegraded(pr.Degraded, pr.DegradedReason, strict)
}

// planRemoteAsync enqueues the matrix on the daemon's durable queue and polls
// the job until it reaches a terminal state. A job observed as failed is not
// fatal — the queue retries it with backoff — only dead (retries exhausted)
// ends the wait early.
func planRemoteAsync(c *remoteClient, payload []byte, timeout time.Duration, strict bool) {
	resp, body := c.do(http.MethodPost, "/v1/plan?async=1", payload, timeout)
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("%s: %s: %s", c.base(), resp.Status, strings.TrimSpace(string(body)))
	}
	var jb remoteJob
	if err := json.Unmarshal(body, &jb); err != nil {
		log.Fatalf("decoding job handle: %v", err)
	}
	if jb.Deduped {
		log.Printf("joined existing job %s (state %s)", jb.JobID, jb.State)
	} else {
		log.Printf("submitted job %s", jb.JobID)
	}

	// Poll budget: the planning deadline bounds one attempt, not time spent
	// queued behind other tenants, so the wait allows for retries and queueing
	// on top of the plan's own clock.
	budget := 15 * time.Minute
	if timeout > 0 {
		budget = 3*timeout + time.Minute
	}
	deadline := time.Now().Add(budget)
	interval := 200 * time.Millisecond
	lastState := jb.State
	for {
		resp, body = c.do(http.MethodGet, "/v1/jobs/"+jb.JobID, nil, 0)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("polling job %s: %s: %s", jb.JobID, resp.Status, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &jb); err != nil {
			log.Fatalf("decoding job %s: %v", jb.JobID, err)
		}
		if jb.State != lastState {
			log.Printf("job %s: %s", jb.JobID, jb.State)
			lastState = jb.State
		}
		switch jb.State {
		case "done":
			if jb.Plan == nil {
				log.Fatalf("job %s done but carried no plan", jb.JobID)
			}
			source := "computed"
			if jb.Plan.Cached {
				source = "cache hit"
			}
			printRemotePlan(jb.Plan, fmt.Sprintf("%s, async, %d attempt(s)", source, jb.Attempts))
			warnDegraded(jb.Plan.Degraded, jb.Plan.DegradedReason, strict)
			return
		case "dead":
			log.Fatalf("job %s is dead after %d attempts: %s", jb.JobID, jb.Attempts, jb.Reason)
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s still %s after %s; it keeps running server-side — poll %s/v1/jobs/%s",
				jb.JobID, jb.State, budget, c.base(), jb.JobID)
		}
		c.sleep(interval)
		if interval < 2*time.Second {
			interval *= 2
		}
	}
}

// printRemotePlan prints the daemon-reported plan summary.
func printRemotePlan(pr *remotePlan, source string) {
	fmt.Printf("key:       %s\n", pr.Key)
	fmt.Printf("plan:      reordered=%v k=%d (%s, %.3fs)\n",
		pr.Reordered, pr.K, source, pr.PreprocessSeconds)
	if pr.AutoK != "" {
		fmt.Printf("auto-k:    %s\n", pr.AutoK)
	}
}
