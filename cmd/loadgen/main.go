// Command loadgen drives a bootesd fleet with synthetic planning traffic and
// asserts latency and shed-rate SLOs against the fleet's own /metrics.
//
// Two ways to point it at a fleet:
//
//	loadgen -peers http://10.0.0.1:8080,http://10.0.0.2:8080   # existing fleet
//	loadgen -spawn 3                                           # in-process fleet
//
// The generator builds -matrices distinct synthetic workloads, ring-orders
// the peer list per matrix (same hash as the servers, so the first attempt
// lands on the owner), and drives -qps requests/s across -workers goroutines
// for -duration. At the end it scrapes every peer's /metrics and computes:
//
//   - p99 serve latency from the merged bootes_serve_latency_seconds{outcome="ok"}
//     histogram (conservative: the bucket upper bound that covers the 99th
//     percentile), asserted against -p99
//   - shed rate from bootes_serve_shed_total vs bootes_serve_served_total,
//     asserted against -max-shed
//
// Exit status: 0 all SLOs met, 1 an SLO was breached, 2 setup/usage error.
// The SLOs are read from the servers, not the client, so a soak run fails on
// what operators would page on — not on client-side scheduling noise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	bootes "bootes"
	"bootes/internal/fleet"
	"bootes/internal/plancache"
	"bootes/internal/reorder"
	"bootes/internal/ring"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		peers    = flag.String("peers", "", "comma-separated bootesd base URLs to load")
		spawn    = flag.Int("spawn", 0, "spawn an in-process fleet of N nodes instead of -peers")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		qps      = flag.Float64("qps", 50, "target aggregate requests per second")
		workers  = flag.Int("workers", 8, "concurrent client goroutines")
		matrices = flag.Int("matrices", 16, "distinct synthetic matrices in the working set")
		rows     = flag.Int("rows", 48, "rows per synthetic matrix")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		replicas = flag.Int("replicas", 2, "fleet replica count (for -misroute accounting)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		sloP99   = flag.Duration("p99", 2*time.Second, "p99 serve-latency SLO (0 disables)")
		maxShed  = flag.Float64("max-shed", 0.05, "maximum tolerated shed rate (fraction; negative disables)")
		misroute = flag.Bool("misroute", false, "fail if any response is served outside the key's replica set")
		killOne  = flag.Bool("kill-one", false, "churn mode (requires -spawn): kill and restart a random node mid-soak, assert total computes <= matrices + crashes")
	)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var computes atomic.Int64
	urls, cluster, cleanup, err := resolveFleet(*peers, *spawn, *replicas, *seed, *killOne, &computes)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	defer cleanup()
	if *killOne && cluster == nil {
		log.Print("-kill-one requires -spawn: churn needs in-process node handles")
		os.Exit(2)
	}

	work, err := buildWorkingSet(urls, *matrices, *rows, *seed, *replicas)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	defer client.CloseIdleConnections()
	churnDone := make(chan int, 1)
	if *killOne {
		go churnOne(cluster, *duration, *seed, churnDone)
	}
	agg := drive(ctx, client, work, *workers, *qps, *duration)
	crashes := 0
	if *killOne {
		crashes = <-churnDone // restart completed; safe to scrape every node
	}

	scraped, scrapeErr := scrapeFleet(client, urls)

	breached := report(os.Stdout, agg, scraped, scrapeErr, *sloP99, *maxShed, *misroute)
	if *killOne {
		// The self-healing bar: a crash is absorbed by replicas and hinted
		// handoff, so at most one extra pipeline run per crash is tolerated
		// fleet-wide (a write racing the kill can lose its only copy).
		total := computes.Load()
		budget := int64(*matrices + crashes)
		fmt.Printf("churn      %d crash(es), %d pipeline computes (budget %d = matrices + crashes)\n",
			crashes, total, budget)
		if total > budget {
			fmt.Printf("FAIL       recompute budget exceeded: the fleet re-planned work a replica already held\n")
			breached = true
		}
	}
	if breached {
		os.Exit(1)
	}
}

// churnOne kills one random node a third of the way into the soak and
// restarts it (with warm-up) another third later, reporting the crash count.
func churnOne(cluster *fleet.Cluster, duration time.Duration, seed int64, done chan<- int) {
	rng := rand.New(rand.NewSource(seed ^ 0x6b696c6c))
	time.Sleep(duration / 3)
	nd := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
	log.Printf("churn: killing %s", nd.URL)
	nd.Kill()
	time.Sleep(duration / 3)
	if err := nd.Restart(); err != nil {
		log.Printf("churn: restarting %s: %v", nd.URL, err)
	} else {
		log.Printf("churn: restarted %s (warm-up complete)", nd.URL)
	}
	done <- 1
}

// resolveFleet returns the base URLs to load, spawning an in-process fleet
// when asked (non-nil cluster). The cleanup func tears the spawned fleet
// down. Spawned pipelines report into computes so churn mode can assert the
// fleet-wide recompute budget.
func resolveFleet(peers string, spawn, replicas int, seed int64, selfHeal bool, computes *atomic.Int64) ([]string, *fleet.Cluster, func(), error) {
	if (peers == "") == (spawn == 0) {
		return nil, nil, nil, fmt.Errorf("exactly one of -peers or -spawn is required")
	}
	if spawn > 0 {
		dir, err := os.MkdirTemp("", "loadgen-fleet-")
		if err != nil {
			return nil, nil, nil, err
		}
		plan := realPlan(seed)
		opts := fleet.ClusterOptions{
			Plan: func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
				computes.Add(1)
				return plan(ctx, m, attempt)
			},
			Dir:      dir,
			Replicas: replicas,
			Seed:     seed,
		}
		if selfHeal {
			// Churn mode needs the outage absorbed within the soak window:
			// fast down-detection, anti-entropy replication/hints, and a
			// bounded warm-up on the restart.
			opts.SelfHeal = true
			opts.ProbeInterval = 200 * time.Millisecond
			opts.DownAfter = 2
			opts.RepairInterval = 500 * time.Millisecond
			opts.WarmupDeadline = 3 * time.Second
		}
		c, err := fleet.LaunchCluster(spawn, opts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, nil, fmt.Errorf("spawning fleet: %w", err)
		}
		log.Printf("spawned %d-node fleet (self-heal=%v): %s", spawn, selfHeal, strings.Join(c.URLs(), " "))
		cleanup := func() {
			c.Close()
			os.RemoveAll(dir)
		}
		return c.URLs(), c, cleanup, nil
	}
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, strings.TrimRight(p, "/"))
		}
	}
	if len(urls) == 0 {
		return nil, nil, nil, fmt.Errorf("-peers is empty")
	}
	return urls, nil, func() {}, nil
}

// realPlan is the production pipeline (no learned model), matching what
// bootesd runs, so a spawned soak exercises real planning latency.
func realPlan(seed int64) func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
	return func(ctx context.Context, m *sparse.CSR, attempt int) (*reorder.Result, error) {
		opts := &bootes.Options{Seed: seed + int64(attempt)*0x9E3779B9}
		if dl, ok := ctx.Deadline(); ok {
			opts.Budget.MaxWallClock = time.Until(dl)
		}
		plan, err := bootes.PlanContext(ctx, m, opts)
		if err != nil {
			return nil, err
		}
		return &reorder.Result{
			Perm:           plan.Perm,
			Reordered:      plan.Reordered,
			Degraded:       plan.Degraded,
			DegradedReason: plan.DegradedReason,
			SimilarityMode: plan.SimilarityMode,
			PreprocessTime: time.Duration(plan.PreprocessSeconds * float64(time.Second)),
			FootprintBytes: plan.FootprintBytes,
			Extra:          map[string]float64{"k": float64(plan.K)},
		}, nil
	}
}

// workItem is one matrix of the working set: its serialized body, cache key,
// and the fleet's preference order for it (owner first).
type workItem struct {
	body     []byte
	key      string
	bases    []string        // all peers, ring-ordered for this key
	replicaN map[string]bool // the first `replicas` bases: valid servers
}

func buildWorkingSet(urls []string, matrices, rows int, seed int64, replicas int) ([]workItem, error) {
	r, err := ring.New(urls, 0)
	if err != nil {
		return nil, fmt.Errorf("building ring: %w", err)
	}
	items := make([]workItem, 0, matrices)
	for i := 0; i < matrices; i++ {
		m := workloads.ScrambledBlock(workloads.Params{
			Rows: rows, Cols: rows, Density: 0.08, Seed: seed + int64(i), Groups: 4,
		})
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
			return nil, fmt.Errorf("serializing matrix %d: %w", i, err)
		}
		key := plancache.KeyCSR(m)
		bases := r.Replicas(key, len(urls))
		n := replicas
		if n > len(bases) {
			n = len(bases)
		}
		valid := make(map[string]bool, n)
		for _, b := range bases[:n] {
			valid[b] = true
		}
		items = append(items, workItem{body: buf.Bytes(), key: key, bases: bases, replicaN: valid})
	}
	return items, nil
}

// aggregate is the client-side view of the run.
type aggregate struct {
	sent      atomic.Int64
	byStatus  sync.Map // int -> *atomic.Int64
	errors    atomic.Int64
	misroutes atomic.Int64
	elapsed   time.Duration

	mu        sync.Mutex
	latencies []time.Duration
}

func (a *aggregate) note(status int) {
	v, _ := a.byStatus.LoadOrStore(status, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

func (a *aggregate) observe(d time.Duration) {
	a.mu.Lock()
	a.latencies = append(a.latencies, d)
	a.mu.Unlock()
}

// drive paces requests at qps across workers until duration elapses or ctx
// is cancelled. Each request goes to its matrix's ring-preferred peer and
// fails over to the next peer on transport errors or 5xx.
func drive(ctx context.Context, client *http.Client, work []workItem, workers int, qps float64, duration time.Duration) *aggregate {
	agg := &aggregate{}
	if qps <= 0 {
		qps = 1
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	ticks := make(chan struct{})
	go func() {
		defer close(ticks)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				select {
				case ticks <- struct{}{}:
				case <-runCtx.Done():
					return
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 0x5eed))
			for range ticks {
				item := work[rng.Intn(len(work))]
				fire(runCtx, client, item, agg)
			}
		}(w)
	}
	wg.Wait()
	agg.elapsed = time.Since(start)
	return agg
}

func fire(ctx context.Context, client *http.Client, item workItem, agg *aggregate) {
	agg.sent.Add(1)
	begin := time.Now()
	for i, base := range item.bases {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/plan", bytes.NewReader(item.body))
		if err != nil {
			agg.errors.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				agg.errors.Add(1)
				return
			}
			if i == len(item.bases)-1 {
				agg.errors.Add(1)
				return
			}
			continue // transport failure: fail over to the next peer
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 && i < len(item.bases)-1 {
			continue
		}
		agg.note(resp.StatusCode)
		if resp.StatusCode == http.StatusOK {
			agg.observe(time.Since(begin))
			servedBy := resp.Header.Get(fleet.ServedByHeader)
			if servedBy == "" {
				servedBy = base // answered locally by the peer we hit
			}
			if !item.replicaN[servedBy] {
				agg.misroutes.Add(1)
			}
		}
		return
	}
}

// fleetMetrics is what the SLO gate needs from the scraped expositions:
// the merged ok-latency histogram and the served/shed counters.
type fleetMetrics struct {
	buckets map[float64]uint64 // le upper bound -> cumulative count, merged
	okCount uint64
	served  int64
	shed    int64
}

func scrapeFleet(client *http.Client, urls []string) (*fleetMetrics, error) {
	fm := &fleetMetrics{buckets: map[float64]uint64{}}
	for _, u := range urls {
		resp, err := client.Get(u + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("scraping %s: %w", u, err)
		}
		err = parseExposition(resp.Body, fm)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("parsing %s/metrics: %w", u, err)
		}
	}
	return fm, nil
}

// parseExposition folds one node's Prometheus text format into fm. Only the
// three families the SLO gate uses are read; everything else is skipped.
func parseExposition(r io.Reader, fm *fleetMetrics) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, `bootes_serve_latency_seconds_bucket{outcome="ok",le="`):
			rest := line[len(`bootes_serve_latency_seconds_bucket{outcome="ok",le="`):]
			end := strings.Index(rest, `"`)
			if end < 0 {
				continue
			}
			leStr, valStr := rest[:end], strings.TrimSpace(rest[end+2:])
			le := math.Inf(1)
			if leStr != "+Inf" {
				f, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					continue
				}
				le = f
			}
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				continue
			}
			fm.buckets[le] += v
		case strings.HasPrefix(line, `bootes_serve_latency_seconds_count{outcome="ok"}`):
			v, err := strconv.ParseUint(strings.TrimSpace(line[len(`bootes_serve_latency_seconds_count{outcome="ok"}`):]), 10, 64)
			if err == nil {
				fm.okCount += v
			}
		case strings.HasPrefix(line, "bootes_serve_served_total "):
			v, err := strconv.ParseInt(strings.TrimSpace(line[len("bootes_serve_served_total "):]), 10, 64)
			if err == nil {
				fm.served += v
			}
		case strings.HasPrefix(line, "bootes_serve_shed_total "):
			v, err := strconv.ParseInt(strings.TrimSpace(line[len("bootes_serve_shed_total "):]), 10, 64)
			if err == nil {
				fm.shed += v
			}
		}
	}
	return sc.Err()
}

// quantileUpperBound returns the histogram bucket upper bound covering
// quantile q — a conservative (pessimistic) percentile estimate.
func (fm *fleetMetrics) quantileUpperBound(q float64) (float64, bool) {
	if fm.okCount == 0 || len(fm.buckets) == 0 {
		return 0, false
	}
	bounds := make([]float64, 0, len(fm.buckets))
	for le := range fm.buckets {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	rank := uint64(math.Ceil(q * float64(fm.okCount)))
	for _, le := range bounds {
		if fm.buckets[le] >= rank {
			return le, true
		}
	}
	return math.Inf(1), true
}

func (fm *fleetMetrics) shedRate() float64 {
	total := fm.served + fm.shed
	if total == 0 {
		return 0
	}
	return float64(fm.shed) / float64(total)
}

// report prints the run summary and evaluates the SLOs. It returns true if
// any SLO was breached.
func report(w io.Writer, agg *aggregate, fm *fleetMetrics, scrapeErr error, sloP99 time.Duration, maxShed float64, misroute bool) bool {
	sent := agg.sent.Load()
	qps := 0.0
	if agg.elapsed > 0 {
		qps = float64(sent) / agg.elapsed.Seconds()
	}
	fmt.Fprintf(w, "sent %d requests in %s (%.1f qps), %d transport errors\n",
		sent, agg.elapsed.Round(time.Millisecond), qps, agg.errors.Load())

	var statuses []int
	agg.byStatus.Range(func(k, _ any) bool { statuses = append(statuses, k.(int)); return true })
	sort.Ints(statuses)
	for _, s := range statuses {
		v, _ := agg.byStatus.Load(s)
		fmt.Fprintf(w, "  HTTP %d: %d\n", s, v.(*atomic.Int64).Load())
	}
	if n := len(agg.latencies); n > 0 {
		sort.Slice(agg.latencies, func(i, j int) bool { return agg.latencies[i] < agg.latencies[j] })
		idx := func(q float64) time.Duration { return agg.latencies[min(n-1, int(q*float64(n)))] }
		fmt.Fprintf(w, "client-side latency: p50=%s p99=%s max=%s\n",
			idx(0.50).Round(time.Microsecond), idx(0.99).Round(time.Microsecond), agg.latencies[n-1].Round(time.Microsecond))
	}

	breached := false
	if scrapeErr != nil {
		fmt.Fprintf(w, "SLO FAIL: could not scrape fleet metrics: %v\n", scrapeErr)
		return true
	}

	if sloP99 > 0 {
		if p99, ok := fm.quantileUpperBound(0.99); !ok {
			fmt.Fprintf(w, "SLO FAIL: no ok-latency samples in fleet histograms\n")
			breached = true
		} else if p99 > sloP99.Seconds() {
			fmt.Fprintf(w, "SLO FAIL: fleet p99 latency ≤%gs exceeds %s\n", p99, sloP99)
			breached = true
		} else {
			fmt.Fprintf(w, "SLO ok: fleet p99 latency ≤%gs (limit %s)\n", p99, sloP99)
		}
	}
	if maxShed >= 0 {
		rate := fm.shedRate()
		if rate > maxShed {
			fmt.Fprintf(w, "SLO FAIL: shed rate %.2f%% exceeds %.2f%% (%d shed / %d served)\n",
				rate*100, maxShed*100, fm.shed, fm.served)
			breached = true
		} else {
			fmt.Fprintf(w, "SLO ok: shed rate %.2f%% (limit %.2f%%)\n", rate*100, maxShed*100)
		}
	}
	if misroute {
		if mr := agg.misroutes.Load(); mr > 0 {
			fmt.Fprintf(w, "SLO FAIL: %d responses served outside their replica set\n", mr)
			breached = true
		} else {
			fmt.Fprintf(w, "SLO ok: all responses served within their replica sets\n")
		}
	}
	return breached
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
