package main

import (
	"math"
	"strings"
	"testing"
	"time"
)

const sampleExposition = `# HELP bootes_serve_latency_seconds Wall-clock latency of /v1/plan responses.
# TYPE bootes_serve_latency_seconds histogram
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.005"} 90
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.01"} 95
bootes_serve_latency_seconds_bucket{outcome="ok",le="0.025"} 99
bootes_serve_latency_seconds_bucket{outcome="ok",le="+Inf"} 100
bootes_serve_latency_seconds_sum{outcome="ok"} 0.42
bootes_serve_latency_seconds_count{outcome="ok"} 100
bootes_serve_latency_seconds_bucket{outcome="shed",le="0.005"} 7
bootes_serve_latency_seconds_bucket{outcome="shed",le="+Inf"} 7
bootes_serve_served_total 100
bootes_serve_shed_total 7
`

func TestParseExpositionMergesAcrossNodes(t *testing.T) {
	fm := &fleetMetrics{buckets: map[float64]uint64{}}
	for i := 0; i < 2; i++ { // two identical nodes: every number doubles
		if err := parseExposition(strings.NewReader(sampleExposition), fm); err != nil {
			t.Fatal(err)
		}
	}
	if fm.okCount != 200 {
		t.Errorf("okCount = %d, want 200", fm.okCount)
	}
	if fm.served != 200 || fm.shed != 14 {
		t.Errorf("served/shed = %d/%d, want 200/14", fm.served, fm.shed)
	}
	if got := fm.buckets[0.005]; got != 180 {
		t.Errorf("bucket[0.005] = %d, want 180", got)
	}
	if got := fm.buckets[math.Inf(1)]; got != 200 {
		t.Errorf("bucket[+Inf] = %d, want 200", got)
	}
	// shed-outcome buckets must not leak into the ok histogram
	if fm.buckets[0.005] == 194 {
		t.Error("shed buckets were merged into the ok histogram")
	}
}

func TestQuantileUpperBound(t *testing.T) {
	fm := &fleetMetrics{buckets: map[float64]uint64{}}
	if err := parseExposition(strings.NewReader(sampleExposition), fm); err != nil {
		t.Fatal(err)
	}
	// rank(0.99) = 99, first covering bound is 0.025
	if p99, ok := fm.quantileUpperBound(0.99); !ok || p99 != 0.025 {
		t.Errorf("p99 = %v (ok=%v), want 0.025", p99, ok)
	}
	// rank(0.50) = 50 fits in the first bucket
	if p50, ok := fm.quantileUpperBound(0.50); !ok || p50 != 0.005 {
		t.Errorf("p50 = %v (ok=%v), want 0.005", p50, ok)
	}
	// the tail sample only appears at +Inf
	if p, ok := fm.quantileUpperBound(1.0); !ok || !math.IsInf(p, 1) {
		t.Errorf("p100 = %v (ok=%v), want +Inf", p, ok)
	}
	empty := &fleetMetrics{buckets: map[float64]uint64{}}
	if _, ok := empty.quantileUpperBound(0.99); ok {
		t.Error("empty histogram reported a quantile")
	}
}

func TestShedRate(t *testing.T) {
	fm := &fleetMetrics{served: 95, shed: 5}
	if got := fm.shedRate(); got != 0.05 {
		t.Errorf("shedRate = %v, want 0.05", got)
	}
	if got := (&fleetMetrics{}).shedRate(); got != 0 {
		t.Errorf("empty shedRate = %v, want 0", got)
	}
}

func TestReportBreaches(t *testing.T) {
	fm := &fleetMetrics{buckets: map[float64]uint64{}}
	if err := parseExposition(strings.NewReader(sampleExposition), fm); err != nil {
		t.Fatal(err)
	}
	agg := &aggregate{}
	var b strings.Builder
	// p99 upper bound is 0.025s; a 10ms SLO must breach, shed 6.5% > 5% must breach.
	if !report(&b, agg, fm, nil, 10*time.Millisecond, 0.05, false) {
		t.Errorf("report did not flag breaches:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "SLO FAIL") {
		t.Errorf("missing SLO FAIL in output:\n%s", b.String())
	}
	b.Reset()
	if report(&b, agg, fm, nil, time.Second, 0.10, false) {
		t.Errorf("report flagged breach with generous SLOs:\n%s", b.String())
	}
}
