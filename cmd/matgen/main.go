// Command matgen emits the synthetic evaluation suite (the Table 3 analogs)
// and parametric archetype matrices as Matrix Market files.
//
// Usage:
//
//	matgen suite -dir out/ [-scale 0.12] [-only IN,PO]   # Table 3 analogs
//	matgen one   -out m.mtx -arch scrambled-block -rows 4096 -cols 4096 \
//	             -density 0.005 [-groups 16] [-seed 7]
//	matgen list                                          # archetypes + suite
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"bootes/internal/plancache/atomicio"
	"bootes/internal/sparse"
	"bootes/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matgen: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "suite":
		cmdSuite(os.Args[2:])
	case "one":
		cmdOne(os.Args[2:])
	case "list":
		cmdList()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: matgen <suite|one|list> [flags]")
	os.Exit(2)
}

// writeMatrix publishes the matrix atomically (temp + fsync + rename), so an
// interrupted matgen run never leaves a torn .mtx for a later job to trip on.
func writeMatrix(path string, m *sparse.CSR) {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return sparse.WriteMatrixMarket(w, m)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func cmdSuite(args []string) {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	dir := fs.String("dir", ".", "output directory")
	scale := fs.Float64("scale", 0.12, "size scale (1 = paper's full sizes)")
	only := fs.String("only", "", "comma-separated IDs to restrict to")
	fs.Parse(args)

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, spec := range workloads.Table3() {
		if len(want) > 0 && !want[spec.ID] {
			continue
		}
		m := spec.Generate(*scale)
		path := filepath.Join(*dir, fmt.Sprintf("%s_%s.mtx", spec.ID, spec.Name))
		writeMatrix(path, m)
		fmt.Printf("%-3s %-20s %7dx%-7d nnz=%-9d -> %s\n", spec.ID, spec.Name, m.Rows, m.Cols, m.NNZ(), path)
	}
}

func archByName(name string) (workloads.Archetype, bool) {
	for _, a := range allArchetypes() {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

func allArchetypes() []workloads.Archetype {
	return []workloads.Archetype{
		workloads.ArchScrambledBlock, workloads.ArchFEM, workloads.ArchFEM3D,
		workloads.ArchPowerLaw, workloads.ArchCircuit, workloads.ArchLP,
		workloads.ArchKNN, workloads.ArchBanded, workloads.ArchRandom,
		workloads.ArchManySmallClusters, workloads.ArchNoisyBlock64,
		workloads.ArchHubPowerLaw,
	}
}

func cmdOne(args []string) {
	fs := flag.NewFlagSet("one", flag.ExitOnError)
	out := fs.String("out", "", "output path")
	arch := fs.String("arch", "scrambled-block", "archetype (see `matgen list`)")
	rows := fs.Int("rows", 4096, "rows")
	cols := fs.Int("cols", 0, "cols (default rows)")
	density := fs.Float64("density", 0.005, "target density")
	groups := fs.Int("groups", 0, "hidden group count (archetype-specific)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("one: -out is required")
	}
	a, ok := archByName(*arch)
	if !ok {
		log.Fatalf("unknown archetype %q (see `matgen list`)", *arch)
	}
	if *cols == 0 {
		*cols = *rows
	}
	m := workloads.Generate(a, workloads.Params{
		Rows: *rows, Cols: *cols, Density: *density, Seed: *seed, Groups: *groups,
	})
	writeMatrix(*out, m)
	fmt.Printf("%s: %s -> %s\n", *arch, m, *out)
}

func cmdList() {
	fmt.Println("archetypes:")
	for _, a := range allArchetypes() {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println("\nsuite (paper Table 3):")
	for _, s := range workloads.Table3() {
		fmt.Printf("  %-3s %-20s %6dk x %6dk density %.2e (%s)\n",
			s.ID, s.Name, s.Rows/1000, s.Cols/1000, s.Density, s.Archetype)
	}
}
