// Command benchsuite regenerates every table and figure of the Bootes paper
// on the synthetic suite: Tables 1-4, Figures 1-6, and the §5.1 decision-
// tree analysis. Results are written as a text report; see EXPERIMENTS.md
// for the paper-vs-measured comparison.
//
// Usage:
//
//	benchsuite [-scale 0.12] [-seed 1] [-out report.txt] [-only T1,F4,...]
//	           [-suite IN,PO,...] [-skip-train] [-jobs N] [-similarity auto]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"bootes/internal/core"
	"bootes/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsuite: ")

	scale := flag.Float64("scale", 0.12, "matrix size scale (1 = paper's full Table 3 sizes)")
	seed := flag.Int64("seed", 1, "global random seed")
	outPath := flag.String("out", "", "write the report to this file (default stdout)")
	only := flag.String("only", "", "comma-separated experiment ids to run (T1,T2,T3,T4,F1,F2,F3,F4,F5,F6,DT,MC,EN,AM,SC); empty = all")
	suite := flag.String("suite", "", "comma-separated Table 3 workload IDs to restrict to")
	skipTrain := flag.Bool("skip-train", false, "skip decision-tree training (F3 and DT are skipped; Bootes uses its heuristic gate)")
	figDir := flag.String("figdir", "", "write PGM spy plots for Figures 1-2 into this directory")
	jobs := flag.Int("jobs", 1, "workload-level parallelism for corpus labelling and Figure 4 (results are identical for any value; see also BOOTES_WORKERS)")
	similarity := flag.String("similarity", "auto", "similarity tier for every spectral pass: auto, exact, bitset, approx, or implicit")
	flag.Parse()

	simMode, err := core.ParseSimilarityMode(*similarity)
	if err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Out: out, FigDir: *figDir, Jobs: *jobs,
		Similarity: simMode,
	}
	if *suite != "" {
		cfg.SuiteIDs = strings.Split(*suite, ",")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	fmt.Fprintf(out, "Bootes reproduction suite — scale %.2f, seed %d, %s\n",
		*scale, *seed, time.Now().Format(time.RFC3339))

	// Decision-tree training first: Figure 3 needs the model and held-out
	// set, and the Bootes pipeline in Figures 4/6 uses the trained gate.
	var (
		trainRep *experiments.TrainReport
		testSet  []experiments.LabeledMatrix
		corpus   []experiments.LabeledMatrix
	)
	if !*skipTrain && (run("DT") || run("F3") || run("MC") || len(want) == 0) {
		step(out, "labelling the training corpus + training the decision tree (DT)")
		var err error
		corpus, err = cfg.BuildCorpus()
		if err != nil {
			log.Fatalf("label corpus: %v", err)
		}
		rep, test, err := cfg.TrainOn(corpus)
		if err != nil {
			log.Fatalf("train: %v", err)
		}
		trainRep, testSet = rep, test
		cfg.Model = rep.Model
	}

	type expt struct {
		id string
		fn func() error
	}
	expts := []expt{
		{"T3", func() error { _, err := experiments.Table3(cfg); return err }},
		{"T1", func() error { _, err := experiments.Table1(cfg); return err }},
		{"T2", func() error { _, err := experiments.Table2(cfg); return err }},
		{"F1", func() error { _, err := experiments.Figure1(cfg); return err }},
		{"F2", func() error { _, err := experiments.Figure2(cfg); return err }},
		{"F3", func() error {
			if trainRep == nil {
				fmt.Fprintln(out, "\nFigure 3 skipped (no trained model)")
				return nil
			}
			_, err := experiments.Figure3(cfg, experiments.NewCoreModel(trainRep.Model), testSet)
			return err
		}},
		{"F4", func() error { _, err := experiments.Figure4(cfg); return err }},
		{"F5", func() error { _, err := experiments.Figure5(cfg); return err }},
		{"F6", func() error { _, err := experiments.Figure6(cfg); return err }},
		{"EN", func() error { _, err := experiments.EnergyReport(cfg); return err }},
		{"AM", func() error { _, err := experiments.Amortization(cfg); return err }},
		{"SC", func() error { _, err := experiments.SelectorComparison(cfg); return err }},
		{"MC", func() error {
			if *skipTrain || corpus == nil {
				fmt.Fprintln(out, "\nModel comparison skipped (-skip-train)")
				return nil
			}
			_, err := experiments.ModelComparison(cfg, corpus)
			return err
		}},
	}
	for _, e := range expts {
		if !run(e.id) {
			continue
		}
		step(out, "running "+e.id)
		if err := e.fn(); err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
	}
	fmt.Fprintf(out, "\nTotal: %v\n", time.Since(start).Round(time.Millisecond))
}

func step(out io.Writer, msg string) {
	fmt.Fprintf(out, "\n===== %s =====\n", msg)
}
